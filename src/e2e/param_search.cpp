#include "e2e/param_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/network_epsilon.h"
#include "e2e/scan_batch.h"
#include "e2e/warm_state.h"
#include "sched/service_curve_provider.h"
#include "traffic/eb_memo.h"

namespace deltanc::e2e {

SolveStats& SolveStats::operator+=(const SolveStats& other) {
  optimize_evals += other.optimize_evals;
  eb_evals += other.eb_evals;
  sigma_evals += other.sigma_evals;
  edf_iterations += other.edf_iterations;
  edf_converged = edf_converged && other.edf_converged;
  retries += other.retries;
  fallbacks += other.fallbacks;
  scan_ms += other.scan_ms;
  refine_ms += other.refine_ms;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_stale += other.cache_stale;
  batched_evals += other.batched_evals;
  warm_start_hits += other.warm_start_hits;
  brackets_reused += other.brackets_reused;
  profile_levels += other.profile_levels;
  profile_chain_hits += other.profile_chain_hits;
  return *this;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

void validate_scenario(const Scenario& sc) {
  sc.validate().throw_if_invalid("Solver");
}

/// Largest s keeping n * eb(s) < C (the bisection behind max_stable_s),
/// parameterized on the eb evaluator so the per-scenario SearchContext
/// can route it through its memo.
template <typename EbFn>
double stable_s_limit(double n, double capacity, double mean_rate,
                      double peak_rate, EbFn&& eb) {
  if (n * mean_rate >= capacity) return 0.0;
  if (n * peak_rate < capacity) return kInf;
  double lo = 1e-9, hi = 1.0;
  while (n * eb(hi) < capacity) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (n * eb(mid) < capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Per-scenario state of the nested search, built once per solve instead
/// of once per (s, gamma) evaluation: the effective-bandwidth memo, the
/// reusable theta-solver workspace, the stability-limited s bracket, and
/// the instrumentation counters.  A warm state whose fingerprints match
/// donates its memo (always bit-exact: values depend only on the source)
/// and its bracket (bit-exact when capacity and flow counts also match,
/// skipping the 200-iteration bisection).
struct SearchContext {
  SearchContext(const Scenario& sc_in, Method method_in,
                detail::WarmState* warm_st)
      : sc(sc_in),
        method(method_in),
        eb(sc_in.source),
        use_simd(simd_enabled()) {
    if (warm_st != nullptr && warm_st->source_matches(sc)) {
      eb.adopt(warm_st->eb_entries);
    }
    if (warm_st != nullptr && warm_st->bracket_matches(sc)) {
      s_lo = warm_st->s_lo;
      s_hi = warm_st->s_hi;
      unstable = warm_st->unstable;
      degenerate_bracket = warm_st->degenerate;
      ++stats.brackets_reused;
      return;
    }
    const double n = sc.n_through + sc.n_cross;
    const double limit =
        stable_s_limit(n, sc.capacity, sc.source.mean_rate(),
                       sc.source.peak_rate(), [this](double s) { return eb(s); });
    unstable = (limit == 0.0);
    s_hi = (limit == kInf ? 64.0 : limit) * 0.999;
    // Degenerate bracket: the stability window closes below the default
    // lower probe.  Widen downward so the scans still sample feasible s;
    // solve_for_delta falls back to a dense scan for these.
    if (!unstable && !(s_hi > s_lo)) {
      s_lo = s_hi * 1e-4;
      degenerate_bracket = true;
    }
  }

  const Scenario& sc;
  Method method;
  traffic::EffectiveBandwidthMemo eb;
  SolveWorkspace ws;
  SolveStats stats;
  double s_lo = 1e-4;
  double s_hi = 0.0;
  bool unstable = false;
  bool degenerate_bracket = false;
  bool use_simd = true;
  // Search budget policy (detail::SearchEffort) plus the per-solve latch:
  // solve_for_delta arms `local_now` only after a kLocal warm probe lands,
  // and best_over_gamma reads it to pick its scan/golden budgets.  With
  // kFull (every non-profile solve) the budgets are the historical
  // constants, evaluation for evaluation.
  detail::SearchEffort effort = detail::SearchEffort::kFull;
  bool local_now = false;
  // SoA scratch of the batched scans (reused across evaluations).
  std::vector<double> scan_s;
  std::vector<double> scan_eb;
  std::vector<double> scan_gammas;
  std::vector<double> scan_delays;
  GammaScanBatch gamma_batch;
};

PathParams params_from_eb(const SearchContext& ctx, double s, double eb_s,
                          double delta) {
  return PathParams{ctx.sc.capacity,
                    ctx.sc.hops,
                    ctx.sc.n_through * eb_s,
                    ctx.sc.n_cross * eb_s,
                    s,
                    1.0,
                    delta};
}

/// Delay at one gamma for hoisted per-s invariants (p, sigma_of).
double delay_at(SearchContext& ctx, const PathParams& p,
                const SigmaForEpsilon& sigma_of, double gamma) {
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) return kInf;
  ++ctx.stats.sigma_evals;
  const double sigma = sigma_of(gamma);
  ++ctx.stats.optimize_evals;
  switch (ctx.method) {
    case Method::kExactOpt:
      return optimize_delay(p, gamma, sigma, ctx.ws).delay;
    case Method::kPaperK:
      return k_procedure_delay(p, gamma, sigma, ctx.ws).delay;
  }
  return kInf;
}

/// Golden-section minimization of a continuous function on [lo, hi],
/// seeded by a coarse scan so that a locally non-unimodal objective still
/// lands in the right valley.
template <typename F>
double minimize_scalar(F f, double lo, double hi, int scan_points,
                       int golden_iters, double* best_arg) {
  double best_x = lo;
  double best_v = kInf;
  for (int i = 0; i <= scan_points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / scan_points;
    const double v = f(x);
    if (v < best_v) {
      best_v = v;
      best_x = x;
    }
  }
  const double step = (hi - lo) / scan_points;
  double a = std::max(lo, best_x - step);
  double b = std::min(hi, best_x + step);
  const double inv_phi = 0.6180339887498949;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int iter = 0; iter < golden_iters; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  const double xm = 0.5 * (a + b);
  const double vm = f(xm);
  if (vm < best_v) {
    best_v = vm;
    best_x = xm;
  }
  if (best_arg != nullptr) *best_arg = best_x;
  return best_v;
}

/// Best delay over gamma for fixed s; returns +inf when unstable.  The
/// gamma-independent invariants (PathParams from one eb(s) evaluation and
/// the sigma(epsilon) prefactors) are computed here, once per s, instead
/// of inside every evaluation of the inner golden-section search.
///
/// The 25-point coarse scan runs through the SoA SIMD kernel
/// (e2e/scan_batch.h) for the exact optimizer; the K-procedure (whose
/// inner K search is data-dependent) and the DELTANC_SIMD=off reference
/// mode keep the historical scalar loop.  Both produce bit-identical
/// values, so the golden refinement that follows is shared.
double best_over_gamma(SearchContext& ctx, double delta, double s,
                       double eb_s, double* best_gamma) {
  const PathParams p = params_from_eb(ctx, s, eb_s, delta);
  const double glim = p.gamma_limit();
  if (!(glim > 0.0)) return kInf;
  const SigmaForEpsilon sigma_of(p, ctx.sc.epsilon);
  const double lo = 1e-4 * glim;
  const double hi = 0.9999 * glim;
  // Reduced budget only while a kLocal warm probe has landed (profile
  // descent); otherwise the historical 24/48 schedule, bit-identical.
  const int kScanPoints = ctx.local_now ? 12 : 24;
  const int kGoldenIters = ctx.local_now ? 24 : 48;
  double best_x = lo;
  double best_v = kInf;
  if (ctx.method == Method::kExactOpt && ctx.use_simd) {
    const std::size_t lanes = kScanPoints + 1;
    ctx.scan_gammas.resize(lanes);
    ctx.scan_delays.resize(lanes);
    for (int i = 0; i <= kScanPoints; ++i) {
      ctx.scan_gammas[static_cast<std::size_t>(i)] =
          lo + (hi - lo) * static_cast<double>(i) / kScanPoints;
    }
    detail::gamma_scan_exact_batch(p, sigma_of, ctx.scan_gammas,
                                   ctx.scan_delays, ctx.gamma_batch);
    ctx.stats.sigma_evals += static_cast<std::int64_t>(lanes);
    ctx.stats.optimize_evals += static_cast<std::int64_t>(lanes);
    ctx.stats.batched_evals += static_cast<std::int64_t>(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      if (ctx.scan_delays[i] < best_v) {
        best_v = ctx.scan_delays[i];
        best_x = ctx.scan_gammas[i];
      }
    }
  } else {
    for (int i = 0; i <= kScanPoints; ++i) {
      const double x = lo + (hi - lo) * static_cast<double>(i) / kScanPoints;
      const double v = delay_at(ctx, p, sigma_of, x);
      if (v < best_v) {
        best_v = v;
        best_x = x;
      }
    }
  }
  // Golden refinement around the scan winner -- the exact tail of the
  // historical minimize_scalar(24, 48) call, evaluation for evaluation.
  const double step = (hi - lo) / kScanPoints;
  double a = std::max(lo, best_x - step);
  double b = std::min(hi, best_x + step);
  const double inv_phi = 0.6180339887498949;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = delay_at(ctx, p, sigma_of, x1);
  double f2 = delay_at(ctx, p, sigma_of, x2);
  for (int iter = 0; iter < kGoldenIters; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = delay_at(ctx, p, sigma_of, x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = delay_at(ctx, p, sigma_of, x2);
    }
  }
  const double xm = 0.5 * (a + b);
  const double vm = delay_at(ctx, p, sigma_of, xm);
  if (vm < best_v) {
    best_v = vm;
    best_x = xm;
  }
  if (best_gamma != nullptr) *best_gamma = best_x;
  return best_v;
}

/// One full (s, gamma) optimization at fixed delta.  When `warm` carries
/// a finite previous optimum (EDF fixed point, or an external warm-start
/// state), the 29-point coarse scan over s is replaced by a single probe
/// at the warm-started s; the golden refinement then re-localizes the
/// optimum from there.  `external_warm` marks a probe seeded from a
/// SolveState (counted in stats.warm_start_hits when it lands).
BoundResult solve_for_delta(SearchContext& ctx, double delta,
                            const BoundResult* warm,
                            bool external_warm = false) {
  BoundResult result{kInf, 0.0, 0.0, 0.0, delta};
  if (ctx.unstable) {  // unstable at any s
    result.diagnostics.fail(
        diag::SolveErrorKind::kUnstable,
        "offered load " + fmt(100.0 * ctx.sc.utilization()) +
            "% of capacity; no stable Chernoff parameter exists");
    return result;
  }
  const double s_lo = ctx.s_lo;
  const double s_hi = ctx.s_hi;

  const int kScan = 28;
  const double ratio = std::pow(s_hi / s_lo, 1.0 / kScan);
  double best_s = s_lo;
  double best_v = kInf;
  const auto scan_t0 = Clock::now();
  ctx.local_now = false;
  if (warm != nullptr && std::isfinite(warm->delay_ms) && warm->s > 0.0) {
    // A kLocal solve runs even the probe at the reduced budget; if the
    // probe misses, local_now drops and everything below (coarse scan,
    // dense fallback, refinement) runs at the full budget.
    ctx.local_now = ctx.effort == detail::SearchEffort::kLocal;
    const double s = std::clamp(warm->s, s_lo, s_hi);
    best_v = best_over_gamma(ctx, delta, s, ctx.eb(s), nullptr);
    best_s = s;
    if (external_warm && best_v != kInf) ++ctx.stats.warm_start_hits;
    if (best_v == kInf) ctx.local_now = false;
  }
  if (best_v == kInf) {
    // Coarse logarithmic scan over s (cold start, or warm probe missed):
    // the s grid is laid out as one SoA batch so eb(s) evaluates through
    // the batched spectral-radius kernel (memo misses only).
    ctx.scan_s.resize(kScan + 1);
    ctx.scan_eb.resize(kScan + 1);
    for (int i = 0; i <= kScan; ++i) {
      ctx.scan_s[static_cast<std::size_t>(i)] =
          s_lo * std::pow(s_hi / s_lo, static_cast<double>(i) / kScan);
    }
    ctx.eb.gather(ctx.scan_s, ctx.scan_eb, ctx.use_simd);
    for (int i = 0; i <= kScan; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      const double v =
          best_over_gamma(ctx, delta, ctx.scan_s[k], ctx.scan_eb[k], nullptr);
      if (v < best_v) {
        best_v = v;
        best_s = ctx.scan_s[k];
      }
    }
  }
  if (best_v == kInf || ctx.degenerate_bracket) {
    // Recovery: the coarse scan missed every feasible s (a narrow
    // stability valley), or the bracket was degenerate to begin with.
    // Fall back to a dense logarithmic scan before giving up.
    ++ctx.stats.fallbacks;
    const int kDense = 160;
    ctx.scan_s.resize(kDense + 1);
    ctx.scan_eb.resize(kDense + 1);
    for (int i = 0; i <= kDense; ++i) {
      ctx.scan_s[static_cast<std::size_t>(i)] =
          s_lo * std::pow(s_hi / s_lo, static_cast<double>(i) / kDense);
    }
    ctx.eb.gather(ctx.scan_s, ctx.scan_eb, ctx.use_simd);
    for (int i = 0; i <= kDense; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      const double v =
          best_over_gamma(ctx, delta, ctx.scan_s[k], ctx.scan_eb[k], nullptr);
      if (v < best_v) {
        best_v = v;
        best_s = ctx.scan_s[k];
      }
    }
  }
  ctx.stats.scan_ms += ms_since(scan_t0);
  if (best_v == kInf) {
    result.diagnostics.fail(
        diag::SolveErrorKind::kNumericalDomain,
        "no feasible (s, gamma) found in (0, " + fmt(s_hi) +
            "] even by dense scan; the stability window of Eq. (32) is "
            "numerically empty");
    return result;
  }

  const auto refine_t0 = Clock::now();
  double refined_s = best_s;
  const double refined_v = minimize_scalar(
      [&](double s) { return best_over_gamma(ctx, delta, s, ctx.eb(s), nullptr); },
      std::max(s_lo, best_s / ratio), std::min(s_hi, best_s * ratio),
      ctx.local_now ? 4 : 8, ctx.local_now ? 20 : 32, &refined_s);
  // Keep the argmin over everything seen: the refinement's arithmetic
  // grid need not revisit best_s exactly, so its optimum can come out
  // worse than the scan's already-found value.
  const double final_s = refined_v < best_v ? refined_s : best_s;

  double gamma = 0.0;
  result.delay_ms = best_over_gamma(ctx, delta, final_s, ctx.eb(final_s), &gamma);
  result.gamma = gamma;
  result.s = final_s;
  const PathParams p = params_from_eb(ctx, final_s, ctx.eb(final_s), delta);
  result.sigma = SigmaForEpsilon(p, ctx.sc.epsilon)(gamma);
  ctx.stats.refine_ms += ms_since(refine_t0);
  return result;
}

/// Folds the context's counters into the outgoing result.
BoundResult finish(SearchContext& ctx, BoundResult result) {
  ctx.stats.eb_evals = ctx.eb.misses();
  result.stats = ctx.stats;
  return result;
}

/// Curve-backed kinds (GPS / DRR / SCED).  The per-node guarantee is the
/// deterministic rate-latency curve beta_{R,T} from the spec's
/// ServiceCurveProvider; H hops convolve into beta_{R, H T}
/// (docs/THEORY.md#leftover-service-curves-beyond-delta).  Against the
/// through aggregate's statistical sample-path envelope
/// (rho_0(s) + gamma) t with eps(sigma) = e^{-s sigma}/(1 - e^{-s gamma})
/// (M = 1, alpha = s), the delay bound at violation probability eps is
///
///   d(s, gamma) = H T + sigma / R,
///   sigma = ln( 1 / ((1 - e^{-s gamma}) eps) ) / s,
///
/// valid whenever rho_0(s) + gamma <= R.  sigma is decreasing in gamma,
/// so the optimal slack is the closed form gamma* = R - rho0(s), leaving
/// a 1-D minimization over the Chernoff parameter s.  Note the stability
/// condition is *per class*: only the through load competes against the
/// guaranteed rate R, so (unlike the Delta path) a finite bound can exist
/// with total utilization >= 1 -- the GPS isolation property.
BoundResult solve_curve_backed(const Scenario& sc) {
  BoundResult result{kInf, 0.0, 0.0, 0.0,
                     std::numeric_limits<double>::quiet_NaN()};
  const std::unique_ptr<sched::ServiceCurveProvider> provider =
      sched::make_service_curve_provider(sc.scheduler);
  const double mean = sc.source.mean_rate();
  const sched::ClassLoads loads{sc.n_through * mean, sc.n_cross * mean};
  const std::optional<sched::RateLatency> rl =
      provider->rate_latency(sc.capacity, loads);
  if (!rl.has_value()) {
    throw std::logic_error(
        "Solver: curve-backed provider returned no rate-latency "
        "form for '" + sched::to_string(sc.scheduler) + "'");
  }
  const double rate = rl->rate;
  const double latency = rl->latency * sc.hops;
  traffic::EffectiveBandwidthMemo eb(sc.source);
  SolveStats stats;
  const auto done = [&](BoundResult r) {
    stats.eb_evals = eb.misses();
    r.stats = stats;
    return r;
  };
  const double limit =
      stable_s_limit(static_cast<double>(sc.n_through), rate, mean,
                     sc.source.peak_rate(), [&](double s) { return eb(s); });
  if (limit == 0.0) {
    result.diagnostics.fail(
        diag::SolveErrorKind::kUnstable,
        "through load " + fmt(sc.n_through * mean) +
            " Mbps meets or exceeds the guaranteed rate " + fmt(rate) +
            " Mbps of '" + sched::to_string(sc.scheduler) +
            "'; no stable Chernoff parameter exists");
    return done(result);
  }
  double s_lo = 1e-4;
  const double s_hi = (limit == kInf ? 64.0 : limit) * 0.999;
  if (!(s_hi > s_lo)) s_lo = s_hi * 1e-4;

  const auto delay_at_s = [&](double s) {
    const double gamma = rate - sc.n_through * eb(s);
    if (!(gamma > 0.0)) return kInf;
    ++stats.sigma_evals;
    ++stats.optimize_evals;
    const double sigma =
        std::log(1.0 / ((1.0 - std::exp(-s * gamma)) * sc.epsilon)) / s;
    if (!std::isfinite(sigma)) return kInf;
    return latency + sigma / rate;
  };
  const auto scan_t0 = Clock::now();
  double best_s = 0.0;
  const double best = minimize_scalar(delay_at_s, s_lo, s_hi, 48, 64, &best_s);
  stats.scan_ms += ms_since(scan_t0);
  if (!std::isfinite(best)) {
    result.diagnostics.fail(
        diag::SolveErrorKind::kNumericalDomain,
        "no feasible s found in (0, " + fmt(s_hi) +
            "]; the per-class stability window is numerically empty");
    return done(result);
  }
  result.delay_ms = best;
  result.s = best_s;
  result.gamma = rate - sc.n_through * eb(best_s);
  result.sigma =
      std::log(1.0 / ((1.0 - std::exp(-best_s * result.gamma)) * sc.epsilon)) /
      best_s;
  return done(result);
}

/// EDF fixed point: deadlines are multiples of d_e2e/H, so Delta =
/// (own - cross) * d_e2e / H depends on the bound itself.  Fixed point
/// seeded with the FIFO bound; one shared context memoizes eb(s)
/// across iterations and warm-starts each s scan from the previous
/// iterate.  Non-convergence is recoverable: each retry restarts from
/// the seed with a tighter damping factor before the result is flagged.
///
/// The first attempt (and the warm attempt) accelerates the iteration
/// with a secant step on the residual f(d) = g(d) - d, where g maps a
/// deadline guess to the resulting delay bound.  On the paper grids g
/// is strongly contracting (|g'| ~ 0.05), so the historical beta = 0.5
/// damped update converged at rate ~(1 - beta) -- ~25 solves per point,
/// dominating the Fig. 2 sweep -- while the secant step reaches the
/// same 1e-7 band in 3-5 solves.  A secant step that goes non-finite,
/// non-positive, or more than 4x away from the current iterate falls
/// back to the damped update for that step, and the damped restart
/// schedule below is untouched, so robustness is unchanged.
///
/// A warm state carrying the neighbor's resolved fixed point gets one
/// warm attempt first -- iterating from that d (and probing from that
/// optimum) instead of re-deriving the FIFO seed.  If the warm attempt
/// fails to converge or goes non-finite, the full cold schedule runs
/// unchanged, so warm-starting never degrades robustness.
BoundResult solve_edf(SearchContext& ctx, detail::WarmState* warm_st,
                      int max_edf_restarts, bool& have_edf_d,
                      double& resolved_d) {
  const Scenario& sc = ctx.sc;
  const sched::EdfFactors& factors = sc.scheduler.edf_factors();
  const double factor_gap = factors.own_factor - factors.cross_factor;
  constexpr double kDamping[] = {0.5, 0.25, 0.1};
  constexpr int kMaxIters = 60;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  BoundResult prev{kInf, 0.0, 0.0, 0.0, 0.0};
  double d = 0.0;
  bool converged = false;

  // One iteration schedule from the current (d, prev).  `accelerate`
  // enables the secant step on f(d) = g(d) - d; `external_warm` marks
  // the first solve as a SolveState-seeded probe (warm_start_hits).
  // Returns true on convergence; `d` and `prev` carry the last iterate
  // either way (a non-finite `prev` means the deadline guess drove the
  // delta solve unstable -- the caller decides whether that is fatal).
  const auto iterate = [&](double beta, bool accelerate,
                           bool external_warm) {
    double last_d = kNaN;
    double last_f = kNaN;
    for (int iter = 0; iter < kMaxIters; ++iter) {
      ++ctx.stats.edf_iterations;
      const double delta = factor_gap * d / sc.hops;
      prev = solve_for_delta(ctx, delta, &prev, external_warm && iter == 0);
      if (!std::isfinite(prev.delay_ms)) return false;
      const double f = prev.delay_ms - d;
      if (std::abs(f) <= 1e-7 * std::max(1.0, d)) {
        converged = true;
        return true;
      }
      double d_next = d + beta * f;
      if (accelerate && std::isfinite(last_f) && f != last_f) {
        const double d_sec = d - f * (d - last_d) / (f - last_f);
        if (std::isfinite(d_sec) && d_sec > 0.25 * d && d_sec < 4.0 * d) {
          d_next = d_sec;
        }
      }
      last_d = d;
      last_f = f;
      d = d_next;
    }
    return false;
  };

  if (warm_st != nullptr && warm_st->edf_valid && warm_st->prev_valid &&
      std::isfinite(warm_st->prev.delay_ms)) {
    // Warm attempt seeded by the neighbor's fixed point.  A non-finite
    // iterate just falls through to the cold schedule below.
    prev = warm_st->prev;
    d = warm_st->edf_d;
    iterate(kDamping[0], /*accelerate=*/true, /*external_warm=*/true);
  }

  if (!converged) {
    const BoundResult seed = solve_for_delta(ctx, 0.0, nullptr);
    if (!std::isfinite(seed.delay_ms)) return finish(ctx, seed);
    // Retry policy: attempt 0 plus up to max_edf_restarts damped
    // restarts; -1 (the default) runs the whole built-in schedule.
    // Only attempt 0 accelerates -- the restarts exist for landscapes
    // where aggressive steps misbehave, so they stay purely damped.
    const std::size_t attempts =
        max_edf_restarts < 0
            ? std::size(kDamping)
            : std::min(std::size(kDamping),
                       static_cast<std::size_t>(max_edf_restarts) + 1);
    prev = seed;
    d = seed.delay_ms;
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        // Retry: restart from the FIFO seed with a tighter damping factor.
        ++ctx.stats.retries;
        prev = seed;
        d = seed.delay_ms;
      }
      if (iterate(kDamping[attempt], /*accelerate=*/attempt == 0,
                  /*external_warm=*/false)) {
        break;
      }
      if (!std::isfinite(prev.delay_ms)) return finish(ctx, prev);
    }
  }
  ctx.stats.edf_converged = converged;
  // Re-solve once at the resolved Delta so the returned tuple (delay,
  // gamma, s, sigma, delta) is self-consistent instead of mixing the
  // damped average with parameters from an earlier iterate.
  BoundResult result = solve_for_delta(ctx, factor_gap * d / sc.hops, &prev);
  if (!converged) {
    result.diagnostics.warn(
        diag::SolveErrorKind::kNoConvergence,
        "EDF fixed point did not converge within " +
            std::to_string(kMaxIters) + " iterations after " +
            std::to_string(ctx.stats.retries) +
            " damped restart(s); the bound uses the last iterate");
  }
  have_edf_d = true;
  resolved_d = d;
  return finish(ctx, result);
}

/// Deposits this solve's reusable context into the warm state.
void export_state(detail::WarmState& st, SearchContext& ctx,
                  const BoundResult& result, bool have_edf_d,
                  double resolved_d) {
  st.valid = true;
  st.peak = ctx.sc.source.peak_kb();
  st.p11 = ctx.sc.source.p11();
  st.p22 = ctx.sc.source.p22();
  st.capacity = ctx.sc.capacity;
  st.n_total = static_cast<double>(ctx.sc.n_through + ctx.sc.n_cross);
  st.bracket_valid = true;
  st.s_lo = ctx.s_lo;
  st.s_hi = ctx.s_hi;
  st.unstable = ctx.unstable;
  st.degenerate = ctx.degenerate_bracket;
  st.eb_entries = ctx.eb.entries();
  st.prev_valid = std::isfinite(result.delay_ms);
  st.prev = result;
  st.edf_valid = have_edf_d;
  st.edf_d = resolved_d;
}

}  // namespace

diag::ValidationReport Scenario::validate() const {
  using diag::SolveErrorKind;
  diag::ValidationReport report;
  if (!(capacity > 0.0) || !std::isfinite(capacity)) {
    report.add(SolveErrorKind::kInvalidScenario, "capacity",
               "must be positive and finite (got " + fmt(capacity) + ")");
  }
  if (hops < 1) {
    report.add(SolveErrorKind::kInvalidScenario, "hops",
               "must be >= 1 (got " + std::to_string(hops) + ")");
  }
  if (n_through < 1) {
    report.add(SolveErrorKind::kInvalidScenario, "n_through",
               "need >= 1 through flow (got " + std::to_string(n_through) +
                   ")");
  }
  if (n_cross < 0) {
    report.add(SolveErrorKind::kInvalidScenario, "n_cross",
               "must be >= 0 (got " + std::to_string(n_cross) + ")");
  }
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    report.add(SolveErrorKind::kInvalidScenario, "epsilon",
               "must lie in (0, 1) (got " + fmt(epsilon) + ")");
  }
  // MMOO consistency.  The MmooSource constructor enforces these, so a
  // violation here means the source was corrupted after construction.
  const double mean = source.mean_rate();
  const double peak = source.peak_rate();
  if (!(mean > 0.0) || !std::isfinite(mean) || !(peak >= mean)) {
    report.add(SolveErrorKind::kInvalidScenario, "source",
               "inconsistent MMOO rates (mean " + fmt(mean) + ", peak " +
                   fmt(peak) + ")");
  }
  // EDF deadline factors are validated regardless of the scheduler kind:
  // the defaults are always valid, so a malformed factor is a
  // configuration mistake even when another kind ignores it.
  const sched::EdfFactors& edf = scheduler.edf_factors();
  if (!(edf.own_factor > 0.0) || !std::isfinite(edf.own_factor)) {
    report.add(SolveErrorKind::kInvalidScenario, "edf.own_factor",
               "must be positive and finite (got " + fmt(edf.own_factor) +
                   ")");
  }
  if (!(edf.cross_factor > 0.0) || !std::isfinite(edf.cross_factor)) {
    report.add(SolveErrorKind::kInvalidScenario, "edf.cross_factor",
               "must be positive and finite (got " + fmt(edf.cross_factor) +
                   ")");
  }
  // A fixed-Delta scheduler may use any offset, including +/-inf, but
  // never NaN (the precedence relation would be meaningless).
  if (std::isnan(scheduler.delta())) {
    report.add(SolveErrorKind::kInvalidScenario, "scheduler.delta",
               "fixed Delta offset must not be NaN");
  }
  // Class weights/quanta are validated like the EDF factors: the defaults
  // are always valid, so a malformed entry is a configuration mistake
  // even when a Delta-backed kind ignores them.
  const sched::ClassWeights& weights = scheduler.weights();
  if (weights.size() < 2 || weights.size() > sched::ClassWeights::kMaxClasses) {
    report.add(SolveErrorKind::kInvalidScenario, "scheduler.weights",
               "need 2.." + std::to_string(sched::ClassWeights::kMaxClasses) +
                   " classes (got " + std::to_string(weights.size()) + ")");
  } else {
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (!(weights[i] > 0.0) || !std::isfinite(weights[i])) {
        report.add(SolveErrorKind::kInvalidScenario, "scheduler.weights",
                   "class " + std::to_string(i) +
                       " weight must be positive and finite (got " +
                       fmt(weights[i]) + ")");
        break;
      }
    }
  }
  // Stability: well-formed but overloaded scenarios are reported as
  // kUnstable without making the report invalid.  For Delta-backed kinds
  // the Eq. (32) window needs the *total* load under capacity; for
  // curve-backed kinds only the through class competes against its
  // guaranteed rate R, so a finite bound can exist at total utilization
  // >= 1 (the GPS isolation property).
  if (report.ok()) {
    if (scheduler.is_curve_backed()) {
      const double through_load = n_through * mean;
      const std::optional<sched::RateLatency> rl =
          sched::make_service_curve_provider(scheduler)->rate_latency(
              capacity, sched::ClassLoads{through_load, n_cross * mean});
      if (rl.has_value() && through_load >= rl->rate) {
        report.add(SolveErrorKind::kUnstable, "utilization",
                   "through load " + fmt(through_load) +
                       " Mbps meets or exceeds the guaranteed rate " +
                       fmt(rl->rate) + " Mbps; the delay bound is +inf");
      }
    } else if (const double u = utilization(); u >= 1.0) {
      report.add(SolveErrorKind::kUnstable, "utilization",
                 "offered load " + fmt(100.0 * u) +
                     "% of capacity; the delay bound is +inf");
    }
  }
  return report;
}

double max_stable_s(const Scenario& sc) {
  const double n = sc.n_through + sc.n_cross;
  return stable_s_limit(
      n, sc.capacity, sc.source.mean_rate(), sc.source.peak_rate(),
      [&](double s) { return sc.source.effective_bandwidth(s); });
}

namespace detail {

BoundResult solve_scenario(const Scenario& sc, const EngineRequest& req,
                           SolveState* state) {
  WarmState* st = state != nullptr ? &warm(*state) : nullptr;
  // Curve-backed kinds (GPS/DRR/SCED) have no Delta at all: route them to
  // the service-curve-provider path before the static_delta check (their
  // static_delta() is nullopt, which would otherwise mean "EDF fixed
  // point").  Their 1-D search shares nothing with the Delta engine, so
  // the warm state is cleared rather than poisoned with foreign hints.
  if (!req.delta.has_value() && sc.scheduler.is_curve_backed()) {
    validate_scenario(sc);
    BoundResult result = solve_curve_backed(sc);
    if (st != nullptr) *st = WarmState{};
    return result;
  }
  // Every Delta-backed kind but EDF has a Delta that does not depend on
  // the solve (FIFO 0, BMUX +inf, SP-high -inf, kDelta its offset); an
  // explicit request delta overrides the scheduler entirely.
  std::optional<double> fixed = req.delta;
  if (!fixed.has_value()) fixed = sc.scheduler.static_delta();

  validate_scenario(sc);
  const bool use_warm = req.use_warm && st != nullptr && st->valid;
  SearchContext ctx(sc, req.method, use_warm ? st : nullptr);
  ctx.effort = req.effort;

  BoundResult result;
  bool have_edf_d = false;
  double resolved_d = 0.0;
  if (fixed.has_value()) {
    const BoundResult* warm_prev =
        (use_warm && st->prev_valid) ? &st->prev : nullptr;
    result = finish(ctx, solve_for_delta(ctx, *fixed, warm_prev,
                                         /*external_warm=*/true));
  } else {
    result = solve_edf(ctx, use_warm ? st : nullptr, req.max_edf_restarts,
                       have_edf_d, resolved_d);
  }
  if (st != nullptr) {
    export_state(*st, ctx, result, have_edf_d, resolved_d);
  }
  return result;
}

DelayProfile solve_profile_scenario(const Scenario& sc,
                                    std::span<const double> epsilons,
                                    const EngineRequest& req,
                                    SolveState* state) {
  if (epsilons.empty()) {
    throw std::invalid_argument(
        "Solver::solve_profile: need at least one epsilon level");
  }
  for (double eps : epsilons) {
    if (!(eps > 0.0 && eps < 1.0)) {
      throw std::invalid_argument(
          "Solver::solve_profile: every epsilon level must lie in (0, 1) "
          "(got " + fmt(eps) + ")");
    }
  }
  DelayProfile profile;
  profile.epsilons.assign(epsilons.begin(), epsilons.end());
  profile.levels.resize(profile.epsilons.size());

  const auto level_scenario = [&sc](double eps) {
    Scenario level_sc = sc;
    level_sc.epsilon = eps;
    return level_sc;
  };

  if (!req.use_warm) {
    // Pinning contract: every level is an independent full-budget solve,
    // bit-identical to Solver::solve of the same scenario.  The state
    // (when given) is still refreshed level by level -- a cold solve
    // never *consumes* hints, so threading it cannot change the result.
    for (std::size_t i = 0; i < profile.epsilons.size(); ++i) {
      profile.levels[i] =
          solve_scenario(level_scenario(profile.epsilons[i]), req, state);
    }
  } else {
    // Warm descent: visit the levels from the loosest epsilon (smallest
    // bound) to the tightest, threading one warm-start state so each
    // level inherits the previous level's eb memo, stable-s bracket
    // (both epsilon-independent, hence bit-exact), optimum probe, and
    // EDF fixed point.  Post-probe levels run at the reduced kLocal
    // budget; a level whose probe misses transparently falls back to
    // the full cold schedule.  Ties keep the caller's order.
    std::vector<std::size_t> order(profile.epsilons.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return profile.epsilons[a] > profile.epsilons[b];
                     });
    SolveState local_state;
    SolveState* chain = state != nullptr ? state : &local_state;
    EngineRequest level_req = req;
    level_req.effort = SearchEffort::kLocal;
    bool first = true;
    for (std::size_t idx : order) {
      profile.levels[idx] =
          solve_scenario(level_scenario(profile.epsilons[idx]), level_req,
                         chain);
      const SolveStats& ls = profile.levels[idx].stats;
      if (!first && (ls.warm_start_hits > 0 || ls.brackets_reused > 0)) {
        ++profile.stats.profile_chain_hits;
      }
      first = false;
    }
  }

  for (const BoundResult& level : profile.levels) {
    profile.stats += level.stats;
  }
  profile.stats.profile_levels =
      static_cast<std::int64_t>(profile.levels.size());
  return profile;
}

}  // namespace detail

}  // namespace deltanc::e2e
