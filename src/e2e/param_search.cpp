#include "e2e/param_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/network_epsilon.h"

namespace deltanc::e2e {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

PathParams make_params(const Scenario& sc, double s, double delta) {
  const double eb = sc.source.effective_bandwidth(s);
  return PathParams{sc.capacity,
                    sc.hops,
                    sc.n_through * eb,
                    sc.n_cross * eb,
                    s,
                    1.0,
                    delta};
}

double delay_at(const Scenario& sc, double delta, Method method, double s,
                double gamma) {
  const PathParams p = make_params(sc, s, delta);
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) return kInf;
  const double sigma = sigma_for_epsilon(p, gamma, sc.epsilon);
  switch (method) {
    case Method::kExactOpt:
      return optimize_delay(p, gamma, sigma).delay;
    case Method::kPaperK:
      return k_procedure_delay(p, gamma, sigma).delay;
  }
  return kInf;
}

/// Golden-section minimization of a continuous function on [lo, hi],
/// seeded by a coarse scan so that a locally non-unimodal objective still
/// lands in the right valley.
template <typename F>
double minimize_scalar(F f, double lo, double hi, int scan_points,
                       int golden_iters, double* best_arg) {
  double best_x = lo;
  double best_v = kInf;
  for (int i = 0; i <= scan_points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / scan_points;
    const double v = f(x);
    if (v < best_v) {
      best_v = v;
      best_x = x;
    }
  }
  const double step = (hi - lo) / scan_points;
  double a = std::max(lo, best_x - step);
  double b = std::min(hi, best_x + step);
  const double inv_phi = 0.6180339887498949;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int iter = 0; iter < golden_iters; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  const double xm = 0.5 * (a + b);
  const double vm = f(xm);
  if (vm < best_v) {
    best_v = vm;
    best_x = xm;
  }
  if (best_arg != nullptr) *best_arg = best_x;
  return best_v;
}

/// Best delay over gamma for fixed s; returns +inf when unstable.
double best_over_gamma(const Scenario& sc, double delta, Method method,
                       double s, double* best_gamma) {
  const PathParams probe = make_params(sc, s, delta);
  const double glim = probe.gamma_limit();
  if (!(glim > 0.0)) return kInf;
  return minimize_scalar(
      [&](double gamma) { return delay_at(sc, delta, method, s, gamma); },
      1e-4 * glim, 0.9999 * glim, 24, 48, best_gamma);
}

}  // namespace

double max_stable_s(const Scenario& sc) {
  const double n = sc.n_through + sc.n_cross;
  if (n * sc.source.mean_rate() >= sc.capacity) return 0.0;
  if (n * sc.source.peak_rate() < sc.capacity) return kInf;
  double lo = 1e-9, hi = 1.0;
  while (n * sc.source.effective_bandwidth(hi) < sc.capacity) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (n * sc.source.effective_bandwidth(mid) < sc.capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BoundResult best_delay_bound_for_delta(const Scenario& sc, double delta,
                                       Method method) {
  if (sc.hops < 1 || sc.n_through < 1 || sc.n_cross < 0 ||
      !(sc.epsilon > 0.0 && sc.epsilon < 1.0)) {
    throw std::invalid_argument("best_delay_bound: malformed scenario");
  }
  BoundResult result{kInf, 0.0, 0.0, 0.0, delta};
  double s_hi = max_stable_s(sc);
  if (s_hi == 0.0) return result;  // unstable at any s
  if (s_hi == kInf) s_hi = 64.0;   // peak rate fits; cap the search
  s_hi *= 0.999;
  const double s_lo = 1e-4;

  // Coarse logarithmic scan over s, then golden refinement.
  const int kScan = 28;
  double best_s = s_lo;
  double best_v = kInf;
  for (int i = 0; i <= kScan; ++i) {
    const double s = s_lo * std::pow(s_hi / s_lo,
                                     static_cast<double>(i) / kScan);
    const double v = best_over_gamma(sc, delta, method, s, nullptr);
    if (v < best_v) {
      best_v = v;
      best_s = s;
    }
  }
  if (best_v == kInf) return result;
  const double ratio = std::pow(s_hi / s_lo, 1.0 / kScan);
  double refined_s = best_s;
  minimize_scalar(
      [&](double s) { return best_over_gamma(sc, delta, method, s, nullptr); },
      std::max(s_lo, best_s / ratio), std::min(s_hi, best_s * ratio), 8, 32,
      &refined_s);

  double gamma = 0.0;
  result.delay_ms = best_over_gamma(sc, delta, method, refined_s, &gamma);
  result.gamma = gamma;
  result.s = refined_s;
  const PathParams p = make_params(sc, refined_s, delta);
  result.sigma = sigma_for_epsilon(p, gamma, sc.epsilon);
  return result;
}

BoundResult best_delay_bound(const Scenario& sc, Method method) {
  switch (sc.scheduler) {
    case Scheduler::kFifo:
      return best_delay_bound_for_delta(sc, 0.0, method);
    case Scheduler::kBmux:
      return best_delay_bound_for_delta(sc, kInf, method);
    case Scheduler::kSpHigh:
      return best_delay_bound_for_delta(sc, -kInf, method);
    case Scheduler::kEdf:
      break;
  }
  // EDF: deadlines are multiples of d_e2e/H, so Delta = (own - cross) *
  // d_e2e / H depends on the bound itself.  Damped fixed point, seeded
  // with the FIFO bound.
  const double factor_gap = sc.edf.own_factor - sc.edf.cross_factor;
  BoundResult seed = best_delay_bound_for_delta(sc, 0.0, method);
  if (!std::isfinite(seed.delay_ms)) return seed;
  double d = seed.delay_ms;
  BoundResult result = seed;
  for (int iter = 0; iter < 60; ++iter) {
    const double delta = factor_gap * d / sc.hops;
    result = best_delay_bound_for_delta(sc, delta, method);
    if (!std::isfinite(result.delay_ms)) return result;
    const double d_next = 0.5 * (d + result.delay_ms);
    if (std::abs(d_next - d) <= 1e-7 * std::max(1.0, d)) {
      d = d_next;
      break;
    }
    d = d_next;
  }
  result.delta = factor_gap * d / sc.hops;
  result.delay_ms = d;
  return result;
}

}  // namespace deltanc::e2e
