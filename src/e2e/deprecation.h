// Opt-in deprecation attribute for the pre-Solver free-function entry
// points (optimize_delay, k_procedure_delay, best_delay_bound_for_delta).
//
// The attribute is a no-op by default so existing code (including this
// repository's own benches and tests, which build with -Werror) keeps
// compiling silently; downstream code migrating to the deltanc::Solver
// facade (e2e/solver.h) can define DELTANC_ENABLE_DEPRECATION_WARNINGS
// to surface every remaining call site as a [[deprecated]] diagnostic.
#pragma once

#if defined(DELTANC_ENABLE_DEPRECATION_WARNINGS)
#define DELTANC_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define DELTANC_DEPRECATED(msg)
#endif
