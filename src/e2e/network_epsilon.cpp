#include "e2e/network_epsilon.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace deltanc::e2e {

namespace {

void check_gamma(double gamma) {
  if (!(gamma > 0.0)) {
    throw std::invalid_argument("network epsilon: gamma must be > 0");
  }
}

}  // namespace

nc::ExpBound network_service_bound(const PathParams& p, double gamma) {
  p.validate();
  check_gamma(gamma);
  const double h = static_cast<double>(p.hops);
  const double q = std::exp(-p.alpha * gamma);
  const double prefactor = p.m * h * std::pow(1.0 - q, -(2.0 * h - 1.0) / h);
  return nc::ExpBound(prefactor, p.alpha / h);
}

nc::ExpBound delay_violation_bound(const PathParams& p, double gamma) {
  p.validate();
  check_gamma(gamma);
  const double h = static_cast<double>(p.hops);
  const double q = std::exp(-p.alpha * gamma);
  const double prefactor =
      p.m * (h + 1.0) * std::pow(1.0 - q, -2.0 * h / (h + 1.0));
  return nc::ExpBound(prefactor, p.alpha / (h + 1.0));
}

double sigma_for_epsilon(const PathParams& p, double gamma, double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("sigma_for_epsilon: need 0 < epsilon < 1");
  }
  return delay_violation_bound(p, gamma).sigma_for(epsilon);
}

SigmaForEpsilon::SigmaForEpsilon(const PathParams& p, double epsilon) {
  p.validate();
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("sigma_for_epsilon: need 0 < epsilon < 1");
  }
  // The same sub-expressions, in the same order, as delay_violation_bound
  // + ExpBound::sigma_for, so operator() reproduces them bit-for-bit.
  const double h = static_cast<double>(p.hops);
  alpha_ = p.alpha;
  prefactor_ = p.m * (h + 1.0);
  exponent_ = -2.0 * h / (h + 1.0);
  decay_ = p.alpha / (h + 1.0);
  epsilon_ = epsilon;
}

double SigmaForEpsilon::operator()(double gamma) const {
  check_gamma(gamma);
  const double q = std::exp(-alpha_ * gamma);
  const double m = prefactor_ * std::pow(1.0 - q, exponent_);
  if (!(m > 0.0) || !std::isfinite(m)) {
    // ExpBound's constructor rejects an overflowed prefactor; keep the
    // eager path's behaviour.
    throw std::invalid_argument(
        "sigma_for_epsilon: bounding-function prefactor overflow");
  }
  return std::max(0.0, std::log(m / epsilon_) / decay_);
}

nc::ExpBound network_service_bound_generic(
    std::span<const nc::ExpBound> node_bounds, double gamma) {
  if (node_bounds.empty()) {
    throw std::invalid_argument(
        "network_service_bound_generic: need at least one node");
  }
  check_gamma(gamma);
  // Eq. (31): nodes 1..H-1 are summed over the geometric slack tail; the
  // last node enters once; the sigma split is optimized (Eq. (33)).
  std::vector<nc::ExpBound> terms;
  terms.reserve(node_bounds.size());
  for (std::size_t h = 0; h + 1 < node_bounds.size(); ++h) {
    terms.push_back(nc::geometric_tail(node_bounds[h], gamma));
  }
  terms.push_back(node_bounds.back());
  return nc::inf_convolution(terms);
}

}  // namespace deltanc::e2e
