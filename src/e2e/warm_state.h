// Internal contents of e2e::SolveState (see e2e/solve_state.h for the
// contract).  This header is implementation detail of the solve engine:
// only param_search.cpp and solve_state.cpp include it.
#pragma once

#include <utility>
#include <vector>

#include "e2e/param_search.h"
#include "e2e/solve_state.h"

namespace deltanc::e2e::detail {

struct WarmState {
  /// Anything usable at all; false until a solve deposits context.
  bool valid = false;

  // Fingerprint of the scenario the hints were produced for.  The eb
  // memo is valid whenever the source matches; the stable-s bracket
  // additionally needs capacity and the total flow count to match
  // (stable_s_limit depends on nothing else).  Comparisons are exact
  // (==): a near-miss must recompute, reuse has to be bit-exact.
  double peak = 0.0;
  double p11 = 0.0;
  double p22 = 0.0;
  double capacity = 0.0;
  double n_total = 0.0;

  /// Stable-s bracket of Eq. (32) (the 200-iteration bisection result).
  bool bracket_valid = false;
  double s_lo = 0.0;
  double s_hi = 0.0;
  bool unstable = false;
  bool degenerate = false;

  /// Snapshot of the effective-bandwidth memo (sorted (s, eb(s)) pairs).
  std::vector<std::pair<double, double>> eb_entries;

  /// The previous solve's optimum: its s seeds the warm probe that
  /// replaces the coarse Chernoff scan.
  bool prev_valid = false;
  BoundResult prev{};

  /// Resolved EDF fixed point d of the previous solve (seed for the
  /// neighbor's fixed point); only meaningful for EDF scenarios.
  bool edf_valid = false;
  double edf_d = 0.0;

  [[nodiscard]] bool source_matches(const Scenario& sc) const {
    return valid && peak == sc.source.peak_kb() && p11 == sc.source.p11() &&
           p22 == sc.source.p22();
  }
  [[nodiscard]] bool bracket_matches(const Scenario& sc) const {
    return source_matches(sc) && bracket_valid && capacity == sc.capacity &&
           n_total == static_cast<double>(sc.n_through + sc.n_cross);
  }
};

}  // namespace deltanc::e2e::detail
