// The end-to-end violation probability of Section IV.
//
// Convolving the per-node Theorem-1 service curves with per-node rate
// degradation gamma (Eq. (30)) yields the bounding function Eq. (31),
// which for homogeneous EBB parameters evaluates in closed form (Eq. 34):
//
//   eps_net(sigma) = M H (1-q)^{-(2H-1)/H} e^{-alpha sigma / H},
//   P(W > d(sigma)) <= M (H+1) (1-q)^{-2H/(H+1)} e^{-alpha sigma/(H+1)},
//
// with q = e^{-alpha gamma}.  This module provides both the closed form
// and the generic construction from per-node bounds (used to cross-check
// the closed form and to support heterogeneous nodes).
#pragma once

#include <span>

#include "e2e/path_params.h"
#include "nc/bounding_function.h"

namespace deltanc::e2e {

/// eps_net of Eq. (34), first display: the bounding function of the
/// network service curve S_net over H nodes.
/// @throws std::invalid_argument unless 0 < gamma.
[[nodiscard]] nc::ExpBound network_service_bound(const PathParams& p,
                                                 double gamma);

/// The end-to-end delay violation bound of Eq. (34), second display:
/// the inf-convolution of eps_net with the through-traffic sample-path
/// envelope bound.  P(W > d(sigma)) <= result.eval(sigma).
[[nodiscard]] nc::ExpBound delay_violation_bound(const PathParams& p,
                                                 double gamma);

/// Inverts the delay violation bound: the sigma achieving a target
/// violation probability epsilon,
///   sigma(eps) = (H+1)/alpha * ln( M(H+1)(1-q)^{-2H/(H+1)} / eps ).
[[nodiscard]] double sigma_for_epsilon(const PathParams& p, double gamma,
                                       double epsilon);

/// Hoisted evaluator of sigma_for_epsilon for fixed (p, epsilon): the
/// gamma-independent parts (the M(H+1) prefactor, the (1-q) exponent and
/// the decay rate) are computed once in the constructor, so the gamma
/// inner loop of the parameter search pays one exp/pow/log per call.
/// Evaluations are bit-identical to sigma_for_epsilon(p, gamma, epsilon).
class SigmaForEpsilon {
 public:
  /// @throws std::invalid_argument unless p validates and 0 < eps < 1.
  SigmaForEpsilon(const PathParams& p, double epsilon);

  /// sigma(gamma).  @throws std::invalid_argument unless gamma > 0 or if
  /// the prefactor overflows (matching the eager computation).
  [[nodiscard]] double operator()(double gamma) const;

 private:
  double alpha_;      ///< p.alpha
  double prefactor_;  ///< M (H+1)
  double exponent_;   ///< -2H / (H+1)
  double decay_;      ///< alpha / (H+1)
  double epsilon_;
};

/// Generic construction of Eq. (31) from per-node bounding functions
/// (heterogeneous networks): node h contributes its bound eps_h summed
/// over the geometric gamma-tail, the last node contributes once, and the
/// terms combine by inf-convolution over the sigma split.
/// `node_bounds[h]` is the Theorem-1 bound of node h+1.
/// @throws std::invalid_argument if empty or gamma <= 0.
[[nodiscard]] nc::ExpBound network_service_bound_generic(
    std::span<const nc::ExpBound> node_bounds, double gamma);

}  // namespace deltanc::e2e
