// Opaque warm-start state for deltanc::Solver and the sweep engine.
//
// A scenario solve builds per-scenario context that a *neighboring*
// solve (the next point of a sweep chain, the next request of a batch)
// can reuse instead of rebuilding from scratch: the effective-bandwidth
// memo (bit-exact for any scenario sharing the source), the stable-s
// bracket of Eq. (32) (bit-exact when capacity/flow counts also match),
// the previous (s, gamma) optimum as a scan-skipping probe, and the
// resolved EDF fixed point as an iteration seed.  SolveState carries
// that context across solves without exposing its layout; the contents
// live in e2e/warm_state.h (internal) and are only touched by the
// engine in param_search.cpp.
//
// Reuse is *hinted*, never trusted: every hint is fingerprinted against
// the scenario it came from, stale hints are recomputed, and a missed
// warm probe falls back to the cold scan -- so a warm solve can differ
// from a cold one only through legitimately different iteration paths
// (bounded by the documented warm-start tolerance; see
// docs/API.md#warm-starts), never through wrong reuse.
#pragma once

#include <memory>

namespace deltanc::e2e {

class SolveState;

namespace detail {
struct WarmState;
/// Internal engine access to the state's contents (creates them on
/// first use).  Not API.
[[nodiscard]] WarmState& warm(SolveState& state);
}  // namespace detail

/// Opaque context carried between solves (see file comment).  Default
/// construction is empty: the first solve through it runs cold and
/// deposits its context.  Move-only; cheap to move.
class SolveState {
 public:
  SolveState();
  SolveState(SolveState&&) noexcept;
  SolveState& operator=(SolveState&&) noexcept;
  SolveState(const SolveState&) = delete;
  SolveState& operator=(const SolveState&) = delete;
  ~SolveState();

  /// True when a previous solve has deposited reusable context.
  [[nodiscard]] bool has_value() const noexcept;

  /// Drops all carried context; the next solve through this state runs
  /// cold.
  void reset() noexcept;

 private:
  friend detail::WarmState& detail::warm(SolveState& state);
  std::unique_ptr<detail::WarmState> impl_;
};

}  // namespace deltanc::e2e
