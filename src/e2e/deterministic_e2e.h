// Deterministic (worst-case) end-to-end analysis -- the gamma = 0
// special case of Section IV, executed at the curve level:
//
//  1. at each node, build the Theorem-1 deterministic service curve
//     (Eq. 19) for the through flow against the local cross envelope;
//  2. min-plus convolve the per-node curves into the network service
//     curve S_net = S_1 * ... * S_H (exact piecewise-linear convolution);
//  3. the worst-case end-to-end delay is the smallest d with
//     E_0(t) <= S_net(t + d)  (service_delay_bound).
//
// Each choice of the per-node gate parameters theta_h gives a valid
// bound; per the paper's gamma = 0 discussion the optimum uses a common
// theta across homogeneous nodes, which `det_e2e_best_delay` searches.
// Deterministic bounds are never violated -- the simulator can approach
// but not exceed them.
#pragma once

#include <span>

#include "nc/curve.h"

namespace deltanc::e2e {

/// Homogeneous deterministic path: every node has rate `capacity`, cross
/// traffic bounded by `cross_envelope` (fresh at each node), and the
/// scheduler's through/cross constant is `delta`.
struct DetPath {
  double capacity;
  int hops;
  nc::Curve through_envelope;  ///< deterministic sample-path envelope E_0
  nc::Curve cross_envelope;    ///< deterministic envelope E_c per node
  double delta;                ///< Delta_{0,c}; +/-inf allowed

  /// @throws std::invalid_argument on malformed values.
  void validate() const;
};

/// The network service curve for a given common gate parameter theta
/// (applied at every node).
[[nodiscard]] nc::Curve det_network_service_curve(const DetPath& p,
                                                  double theta);

/// End-to-end worst-case delay for a given common theta; +infinity when
/// unstable.
[[nodiscard]] double det_e2e_delay(const DetPath& p, double theta);

/// Minimizes det_e2e_delay over theta >= 0 (coarse scan + golden
/// refinement).  Writes the optimizing theta if requested.
[[nodiscard]] double det_e2e_best_delay(const DetPath& p,
                                        double* best_theta = nullptr);

}  // namespace deltanc::e2e
