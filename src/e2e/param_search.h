// Scenario-level solve engine: from a concrete network description
// (link rate, path length, MMOO flow counts, scheduler, target violation
// probability) to a probabilistic end-to-end delay bound.
//
// The paper's bound has two free parameters that are not optimized
// analytically: the Chernoff parameter s of the effective bandwidth (the
// EBB description A ~ (1, N eb(s), s)) and the per-node rate slack gamma
// of the network service curve.  The engine minimizes the bound over
// both: an outer golden-section search on s (seeded by a coarse
// logarithmic scan) and an inner golden-section search on gamma within
// the stability window of Eq. (32).  The inner scan runs through the
// SoA SIMD kernels of e2e/scan_batch.h (bit-identical to the scalar
// path; DELTANC_SIMD=off selects the reference implementation).
//
// EDF deadlines in the paper's examples are self-referential: d*_0 and
// d*_c are multiples of d_e2e / H where d_e2e is the EDF bound itself
// (Examples 1 and 3).  The engine resolves this with a damped
// fixed-point iteration on Delta_{0,c} = d*_0 - d*_c.
//
// The one public entry point is deltanc::Solver (e2e/solver.h); the
// historical scenario-level free functions were retired with the rest
// of the deprecated shims, and scripts/check.sh gates against their
// return.  This header keeps the
// scenario/result/stats vocabulary plus the internal engine interface
// the Solver and the sweep chain executor share.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/diagnostics.h"
#include "e2e/path_params.h"
#include "sched/scheduler_spec.h"
#include "traffic/mmoo.h"

namespace deltanc::e2e {

class SolveState;  // e2e/solve_state.h (opaque warm-start context)

/// A homogeneous end-to-end scenario with MMOO traffic (Section V).
struct Scenario {
  double capacity = 100.0;  ///< Mbps (= kb/ms at 1 ms slots)
  int hops = 2;             ///< H
  traffic::MmooSource source = traffic::MmooSource::paper_source();
  int n_through = 100;      ///< N_0
  int n_cross = 100;        ///< N_c at every node
  double epsilon = 1e-9;    ///< target violation probability
  /// Scheduler identity (kind + parameters; carries the EDF deadline
  /// factors that used to live in a separate `edf` field).
  sched::SchedulerSpec scheduler{};

  /// Total utilization U = (N0 + Nc) * mean_rate / C.
  [[nodiscard]] double utilization() const {
    return (n_through + n_cross) * source.mean_rate() / capacity;
  }

  /// Validates every field in one pass and returns *all* violations
  /// (malformed capacity/hops/flow counts, epsilon outside (0,1), EDF
  /// deadline factors, MMOO rate inconsistencies) instead of throwing on
  /// the first.  An overloaded but well-formed scenario (utilization
  /// >= 1) is reported as a kUnstable violation with report.ok() still
  /// true: the solver accepts it and classifies the +inf bound.
  [[nodiscard]] diag::ValidationReport validate() const;
};

/// How to solve the theta optimization.
enum class Method {
  kExactOpt,  ///< exact breakpoint enumeration (e2e/delay_bound.h)
  kPaperK,    ///< the paper's K-procedure (e2e/k_procedure.h)
};

/// Warm-start policy of a solve that is handed a SolveState.
enum class WarmStart {
  /// Ignore any carried context; solve from scratch (bit-identical to a
  /// stateless solve).  The state is still refreshed afterwards.
  kCold,
  /// Consume fingerprint-matching hints from the state: the eb(s) memo
  /// and the stable-s bracket are reused bit-exactly; the previous
  /// optimum and the resolved EDF fixed point seed the search (which may
  /// legitimately change iteration paths within the documented
  /// warm-start tolerance; see docs/API.md#warm-starts).
  kWarm,
};

/// Instrumentation of one solve: how much work the nested search did and
/// where the wall-clock went.  Counters aggregate across the EDF fixed
/// point when one runs; `operator+=` lets sweeps aggregate across points.
struct SolveStats {
  std::int64_t optimize_evals = 0;  ///< theta optimizations (Eq. 39 / K-proc)
  std::int64_t eb_evals = 0;        ///< distinct eb(s) computations (memo misses)
  std::int64_t sigma_evals = 0;     ///< sigma(epsilon) evaluations (Eq. 34)
  int edf_iterations = 0;           ///< EDF fixed-point iterations (0 otherwise)
  bool edf_converged = true;        ///< false if the fixed point hit its cap
  int retries = 0;     ///< EDF fixed-point restarts with tighter damping
  int fallbacks = 0;   ///< dense log-scan rescues of a degenerate/missed s scan
  double scan_ms = 0.0;             ///< wall time in the coarse s scans
  double refine_ms = 0.0;           ///< wall time in the golden refinements
  // Persistent-result-cache outcome of this result (filled by the batch
  // service / caching layers in src/io, zero for a plain solve).  Kept
  // here so SweepReport::stats surfaces cache effectiveness alongside
  // the solver counters with the existing operator+= aggregation.
  std::int64_t cache_hits = 0;    ///< result was served from the cache
  std::int64_t cache_misses = 0;  ///< no entry existed; solved and stored
  std::int64_t cache_stale = 0;   ///< entry from an older schema/version
  // SIMD / warm-start instrumentation (PR 9): the speedup must be
  // observable, not inferred.
  std::int64_t batched_evals = 0;   ///< evals dispatched through the SIMD kernel
  std::int64_t warm_start_hits = 0; ///< warm hints consumed (probe / EDF seed)
  std::int64_t brackets_reused = 0; ///< stable-s brackets adopted (no bisection)
  // Delay-profile instrumentation (PR 10): set on DelayProfile::stats by
  // the profile driver (per-level BoundResult::stats keep them zero), so
  // a sweep/batch aggregate shows how many levels were solved and how
  // many of them actually consumed a chained warm hint.
  std::int64_t profile_levels = 0;     ///< epsilon levels solved in profiles
  std::int64_t profile_chain_hits = 0; ///< post-first levels that used the chain

  SolveStats& operator+=(const SolveStats& other);
};

/// Result of the search; `delay_ms` is +infinity when the configuration
/// is unstable (per-node load >= capacity).  A non-finite or degraded
/// result is classified in `diagnostics` (kUnstable, kNumericalDomain,
/// or a kNoConvergence warning) instead of being silently accepted.
struct BoundResult {
  double delay_ms;
  double gamma;   ///< optimizing per-node rate slack
  double s;       ///< optimizing Chernoff parameter
  double sigma;   ///< sigma(epsilon) at the optimum
  double delta;   ///< resolved Delta_{0,c}
  SolveStats stats{};             ///< instrumentation of this solve
  diag::Diagnostics diagnostics{};  ///< error/warning classification
};

/// A full d(epsilon) CCDF artifact: the violation-probability grid plus
/// one complete BoundResult per level (delay, Delta/sigma/theta optima,
/// diagnostics, per-level stats).  `levels[i]` solves the scenario at
/// `epsilons[i]`; the order is the caller's, whatever order the solver
/// visited the levels in internally.  `stats` aggregates the per-level
/// counters and additionally carries `profile_levels` /
/// `profile_chain_hits` (which per-level stats keep at zero).
///
/// The theory guarantees d(epsilon) is non-increasing in epsilon (a
/// looser violation probability can only shrink the bound); the
/// self_check_profile battery enforces this within the warm-start
/// tolerance.
struct DelayProfile {
  std::vector<double> epsilons;     ///< violation-probability grid
  std::vector<BoundResult> levels;  ///< levels[i] solves epsilons[i]
  SolveStats stats{};               ///< aggregate + profile counters
};

/// The largest Chernoff parameter keeping the per-node load below
/// capacity ((N0+Nc) eb(s) < C); +infinity when even the peak rate fits,
/// 0 when the mean rate already overloads the link.
[[nodiscard]] double max_stable_s(const Scenario& sc);

namespace detail {

/// Search-budget policy of one engine solve.  kFull is the historical
/// budget (every cold or scalar-warm solve).  kLocal shrinks the gamma
/// scan/golden budgets and the s refinement *only while a warm probe has
/// landed* -- consecutive profile levels differ in epsilon alone, so the
/// optimum moves little and the full re-localization is wasted work; a
/// missed probe silently reverts the solve to the full budget, so
/// robustness (dense-scan fallback included) is unchanged.
enum class SearchEffort {
  kFull,   ///< historical budgets; bit-identical to pre-profile solves
  kLocal,  ///< reduced budgets around a landed warm probe (profile descent)
};

/// What deltanc::Solver (or the sweep chain executor) asks the engine to
/// do.  Internal: user code calls deltanc::Solver, never this.
struct EngineRequest {
  Method method = Method::kExactOpt;
  /// EDF fixed-point retry policy: -1 = full damped-restart schedule,
  /// 0 = no restarts, n = at most n.
  int max_edf_restarts = -1;
  /// Solve at this fixed, already-resolved Delta (skips the EDF fixed
  /// point and the scheduler's static Delta).
  std::optional<double> delta;
  /// Consume warm hints from the state (WarmStart::kWarm semantics).
  /// With false the solve is bit-identical to a stateless one.
  bool use_warm = false;
  /// Search budget; only the warm profile descent requests kLocal.
  SearchEffort effort = SearchEffort::kFull;
};

/// The scenario-solve engine behind deltanc::Solver.  `state` may be
/// null (one-shot solve); when non-null it is consulted per
/// `req.use_warm` and refreshed with this solve's context either way.
[[nodiscard]] BoundResult solve_scenario(const Scenario& sc,
                                         const EngineRequest& req,
                                         SolveState* state);

/// The d(epsilon) profile engine behind Solver::solve_profile.  With
/// `req.use_warm` false every level is solved independently at the full
/// budget -- bit-identical to K scalar solves of the same scenarios (the
/// pinning contract).  With `req.use_warm` true the engine visits the
/// levels in *descending* epsilon order, threading one warm-start state
/// (the caller's, or a profile-local one when `state` is null) from each
/// level to the next, and solves post-probe levels at SearchEffort::kLocal;
/// results come back in the caller's epsilon order regardless.  Throws
/// std::invalid_argument when `epsilons` is empty or any level falls
/// outside (0, 1).
[[nodiscard]] DelayProfile solve_profile_scenario(
    const Scenario& sc, std::span<const double> epsilons,
    const EngineRequest& req, SolveState* state);

}  // namespace detail

}  // namespace deltanc::e2e
