// Scenario-level API: from a concrete network description (link rate,
// path length, MMOO flow counts, scheduler, target violation probability)
// to a probabilistic end-to-end delay bound.
//
// The paper's bound has two free parameters that are not optimized
// analytically: the Chernoff parameter s of the effective bandwidth (the
// EBB description A ~ (1, N eb(s), s)) and the per-node rate slack gamma
// of the network service curve.  `best_delay_bound` minimizes the bound
// over both: an outer golden-section search on s (seeded by a coarse
// logarithmic scan) and an inner golden-section search on gamma within
// the stability window of Eq. (32).
//
// EDF deadlines in the paper's examples are self-referential: d*_0 and
// d*_c are multiples of d_e2e / H where d_e2e is the EDF bound itself
// (Examples 1 and 3).  `best_delay_bound` resolves this with a damped
// fixed-point iteration on Delta_{0,c} = d*_0 - d*_c.
#pragma once

#include <cstdint>

#include "core/diagnostics.h"
#include "e2e/deprecation.h"
#include "e2e/path_params.h"
#include "sched/scheduler_spec.h"
#include "traffic/mmoo.h"

namespace deltanc::e2e {

/// Which Delta-scheduler serves the through traffic at every node.
///
/// @deprecated Scheduler identity now lives in sched::SchedulerSpec
/// (sched/scheduler_spec.h); this alias of sched::SchedulerKind keeps
/// `e2e::Scheduler::kFifo`-style code compiling (a kind converts
/// implicitly to the equivalent spec).  Define
/// DELTANC_ENABLE_DEPRECATION_WARNINGS for [[deprecated]] diagnostics.
using Scheduler DELTANC_DEPRECATED("use sched::SchedulerSpec / SchedulerKind") =
    sched::SchedulerKind;

/// EDF deadline specification.  Deadlines are per node and expressed as
/// multiples of d_e2e / H (resolved by fixed point): Example 1 and 3 of
/// the paper use own=1, cross=10.
///
/// @deprecated Alias of sched::EdfFactors; the factors now live inside
/// sched::SchedulerSpec (Scenario::scheduler.edf_factors()).
using EdfSpec DELTANC_DEPRECATED("use sched::EdfFactors") = sched::EdfFactors;

/// A homogeneous end-to-end scenario with MMOO traffic (Section V).
struct Scenario {
  double capacity = 100.0;  ///< Mbps (= kb/ms at 1 ms slots)
  int hops = 2;             ///< H
  traffic::MmooSource source = traffic::MmooSource::paper_source();
  int n_through = 100;      ///< N_0
  int n_cross = 100;        ///< N_c at every node
  double epsilon = 1e-9;    ///< target violation probability
  /// Scheduler identity (kind + parameters; carries the EDF deadline
  /// factors that used to live in a separate `edf` field).
  sched::SchedulerSpec scheduler{};

  /// Total utilization U = (N0 + Nc) * mean_rate / C.
  [[nodiscard]] double utilization() const {
    return (n_through + n_cross) * source.mean_rate() / capacity;
  }

  /// Validates every field in one pass and returns *all* violations
  /// (malformed capacity/hops/flow counts, epsilon outside (0,1), EDF
  /// deadline factors, MMOO rate inconsistencies) instead of throwing on
  /// the first.  An overloaded but well-formed scenario (utilization
  /// >= 1) is reported as a kUnstable violation with report.ok() still
  /// true: the solver accepts it and classifies the +inf bound.
  [[nodiscard]] diag::ValidationReport validate() const;
};

/// How to solve the theta optimization.
enum class Method {
  kExactOpt,  ///< exact breakpoint enumeration (e2e/delay_bound.h)
  kPaperK,    ///< the paper's K-procedure (e2e/k_procedure.h)
};

/// Instrumentation of one solve: how much work the nested search did and
/// where the wall-clock went.  Counters aggregate across the EDF fixed
/// point when one runs; `operator+=` lets sweeps aggregate across points.
struct SolveStats {
  std::int64_t optimize_evals = 0;  ///< theta optimizations (Eq. 39 / K-proc)
  std::int64_t eb_evals = 0;        ///< distinct eb(s) computations (memo misses)
  std::int64_t sigma_evals = 0;     ///< sigma(epsilon) evaluations (Eq. 34)
  int edf_iterations = 0;           ///< EDF fixed-point iterations (0 otherwise)
  bool edf_converged = true;        ///< false if the fixed point hit its cap
  int retries = 0;     ///< EDF fixed-point restarts with tighter damping
  int fallbacks = 0;   ///< dense log-scan rescues of a degenerate/missed s scan
  double scan_ms = 0.0;             ///< wall time in the coarse s scans
  double refine_ms = 0.0;           ///< wall time in the golden refinements
  // Persistent-result-cache outcome of this result (filled by the batch
  // service / caching layers in src/io, zero for a plain solve).  Kept
  // here so SweepReport::stats surfaces cache effectiveness alongside
  // the solver counters with the existing operator+= aggregation.
  std::int64_t cache_hits = 0;    ///< result was served from the cache
  std::int64_t cache_misses = 0;  ///< no entry existed; solved and stored
  std::int64_t cache_stale = 0;   ///< entry from an older schema/version

  SolveStats& operator+=(const SolveStats& other);
};

/// Result of the search; `delay_ms` is +infinity when the configuration
/// is unstable (per-node load >= capacity).  A non-finite or degraded
/// result is classified in `diagnostics` (kUnstable, kNumericalDomain,
/// or a kNoConvergence warning) instead of being silently accepted.
struct BoundResult {
  double delay_ms;
  double gamma;   ///< optimizing per-node rate slack
  double s;       ///< optimizing Chernoff parameter
  double sigma;   ///< sigma(epsilon) at the optimum
  double delta;   ///< resolved Delta_{0,c}
  SolveStats stats{};             ///< instrumentation of this solve
  diag::Diagnostics diagnostics{};  ///< error/warning classification
};

/// Delay bound for a fixed, already-resolved Delta (no EDF fixed point).
/// Optimizes over (gamma, s).
///
/// @deprecated Call deltanc::Solver (e2e/solver.h) with
/// SolveOptions::delta instead; this remains as a thin compatibility
/// entry point (define DELTANC_ENABLE_DEPRECATION_WARNINGS to get
/// [[deprecated]] diagnostics for it).
DELTANC_DEPRECATED("use deltanc::Solver with SolveOptions::delta")
[[nodiscard]] BoundResult best_delay_bound_for_delta(const Scenario& sc,
                                                     double delta,
                                                     Method method);

/// Full scenario solve: resolves EDF deadlines by fixed point when
/// needed, then optimizes (gamma, s).  `max_edf_restarts` caps the
/// damped-restart retry policy of the EDF fixed point: -1 runs the full
/// built-in damping schedule (the default; bit-identical to the
/// historical behavior), 0 forbids restarts, n allows at most n.
[[nodiscard]] BoundResult best_delay_bound(const Scenario& sc,
                                           Method method = Method::kExactOpt,
                                           int max_edf_restarts = -1);

/// The largest Chernoff parameter keeping the per-node load below
/// capacity ((N0+Nc) eb(s) < C); +infinity when even the peak rate fits,
/// 0 when the mean rate already overloads the link.
[[nodiscard]] double max_stable_s(const Scenario& sc);

}  // namespace deltanc::e2e
