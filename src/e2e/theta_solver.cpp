#include "e2e/theta_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace deltanc::e2e {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double theta_h(const PathParams& p, double gamma, double sigma, int h,
               double x) {
  p.validate();
  if (h < 1 || h > p.hops) {
    throw std::invalid_argument("theta_h: node index out of range");
  }
  if (!(x >= 0.0) || !(sigma >= 0.0) || !(gamma > 0.0)) {
    throw std::invalid_argument("theta_h: need x >= 0, sigma >= 0, gamma > 0");
  }
  const double ch = p.capacity - (h - 1) * gamma;   // C - (h-1) gamma
  const double rc = p.rho_cross + gamma;            // rho_c + gamma
  const double slack = p.capacity - p.rho_cross - h * gamma;  // ch - rc
  if (!(slack > 0.0)) {
    throw std::invalid_argument(
        "theta_h: stability requires C - rho_c - h*gamma > 0 (Eq. 32)");
  }

  if (p.delta > 0.0) {
    // Regime A (theta <= Delta): constraint (ch - rc)(X + theta) >= sigma.
    const double theta_a = sigma / slack - x;
    if (theta_a <= 0.0) return 0.0;
    if (theta_a <= p.delta) return theta_a;  // handles Delta = +inf (BMUX)
    // Regime B (theta > Delta): ch (X + theta) - rc (X + Delta) >= sigma.
    return (sigma + rc * (x + p.delta)) / ch - x;
  }
  // Delta <= 0 (FIFO at 0, EDF-favoured, SP-high at -inf): the bracket
  // [X + Delta]_+ does not depend on theta.
  const double bracket =
      p.delta == -kInf ? 0.0 : std::max(0.0, x + p.delta);
  return std::max(0.0, (sigma + rc * bracket) / ch - x);
}

double objective(const PathParams& p, double gamma, double sigma, double x) {
  double f = x;
  for (int h = 1; h <= p.hops; ++h) {
    f += theta_h(p, gamma, sigma, h, x);
  }
  return f;
}

bool feasible(const PathParams& p, double gamma, double sigma, double x,
              std::span<const double> theta, double tol) {
  if (theta.size() != static_cast<std::size_t>(p.hops) || x < -tol) {
    return false;
  }
  for (int h = 1; h <= p.hops; ++h) {
    const double th = theta[h - 1];
    if (th < -tol) return false;
    const double ch = p.capacity - (h - 1) * gamma;
    const double rc = p.rho_cross + gamma;
    const double capped = std::min(p.delta, th);
    const double bracket = std::max(0.0, x + capped);
    if (ch * (x + th) - rc * bracket < sigma - tol) return false;
  }
  return true;
}

}  // namespace deltanc::e2e
