// deltanc::Solver -- the consolidated solve entry point of the public
// API (re-exported by include/deltanc/deltanc.h).
//
// Historically the library exposed three free-function entry points at
// different altitudes: e2e::best_delay_bound_for_delta (scenario at a
// fixed Delta), and the low-level theta optimizers e2e::optimize_delay /
// e2e::k_procedure_delay (one (gamma, sigma) evaluation each, method
// chosen by which function you call).  Solver unifies them behind one
// object carrying a SolveOptions: the method, an optional scheduler
// override, an optional fixed Delta, and the EDF retry policy all live
// in one struct -- which is also exactly what the persistent result
// cache hashes (io::solve_cache_key), so "what was solved" and "what
// keys the cache" can never drift apart.
//
// Results are bit-identical to the free functions they replace (pinned
// by tests/solver_facade_test.cpp against the PR 2 hexfloat goldens);
// the free functions remain as thin deprecated shims (see
// e2e/deprecation.h).
#pragma once

#include <optional>

#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/param_search.h"

namespace deltanc {

/// Everything that parameterizes a solve besides the scenario itself.
/// Hashed (together with the scenario and the library version) into the
/// persistent cache key, so every field here must stay serializable.
struct SolveOptions {
  /// Theta optimization: exact breakpoint enumeration or the paper's
  /// K-procedure.
  e2e::Method method = e2e::Method::kExactOpt;
  /// Override the scenario's scheduler without copying the scenario by
  /// hand (e.g. one base scenario solved under every scheduler).  A bare
  /// sched::SchedulerKind (or the deprecated e2e::Scheduler alias of it)
  /// converts implicitly.
  std::optional<sched::SchedulerSpec> scheduler;
  /// Solve at this fixed, already-resolved Delta instead of deriving it
  /// from the scheduler (skips the EDF fixed point entirely).
  std::optional<double> delta;
  /// EDF fixed-point retry policy: -1 = the solver's full damped-restart
  /// schedule (default, bit-identical to the historical behavior),
  /// 0 = no restarts, n = at most n restarts.
  int max_edf_restarts = -1;
  /// Reuse one workspace across Solver::optimize calls (allocation-free
  /// hot loops).  When false every call allocates its own buffers; the
  /// results are bit-identical either way.  Scenario-level solves manage
  /// their workspace internally and ignore this flag.
  bool reuse_workspace = true;
};

/// The facade over the (gamma, s) parameter search and the theta
/// optimizers.  Cheap to construct; copyable.  solve()/solve_at() are
/// const and thread-safe; optimize() mutates the shared workspace when
/// options().reuse_workspace, so give each thread its own Solver there.
class Solver {
 public:
  Solver() = default;
  explicit Solver(SolveOptions options) : options_(options) {}

  [[nodiscard]] const SolveOptions& options() const noexcept {
    return options_;
  }

  /// The scenario this Solver would actually solve: `sc` with the
  /// scheduler override (if any) applied.  Exposed so callers (and the
  /// cache key) can see the effective input.
  [[nodiscard]] e2e::Scenario effective_scenario(
      const e2e::Scenario& sc) const;

  /// Full scenario solve: resolves EDF deadlines by fixed point when
  /// needed (honoring max_edf_restarts), then optimizes (gamma, s).
  /// With options().delta set, solves at that fixed Delta instead.
  [[nodiscard]] e2e::BoundResult solve(const e2e::Scenario& sc) const;

  /// Scenario solve at an explicit fixed Delta (overrides
  /// options().delta for this call).
  [[nodiscard]] e2e::BoundResult solve_at(const e2e::Scenario& sc,
                                          double delta) const;

  /// One theta optimization (Eq. 39 exactly, or the paper's K-procedure,
  /// per options().method) at fixed (gamma, sigma).  With
  /// reuse_workspace (the default) consecutive calls share this Solver's
  /// buffers and the result is copied out; bit-identical to
  /// e2e::optimize_delay / e2e::k_procedure_delay.
  [[nodiscard]] e2e::DelayResult optimize(const e2e::PathParams& p,
                                          double gamma, double sigma) const;

 private:
  SolveOptions options_;
  mutable e2e::SolveWorkspace workspace_;
};

}  // namespace deltanc
