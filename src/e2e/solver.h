// deltanc::Solver -- the consolidated solve entry point of the public
// API (re-exported by include/deltanc/deltanc.h).
//
// Historically the library exposed free-function entry points at
// different altitudes: a full scenario solve, a scenario solve at a
// fixed Delta, and workspace-less wrappers of the low-level theta
// optimizers (one (gamma, sigma) evaluation each, method chosen by
// which function you call).  Solver unifies them behind one object carrying a
// SolveOptions: the method, an optional scheduler override, an optional
// fixed Delta, the EDF retry policy, and the warm-start policy all live
// in one struct -- which is also exactly what the persistent result
// cache hashes (io::solve_cache_key), so "what was solved" and "what
// keys the cache" can never drift apart.  The free-function shims were
// retired in PR 9; scripts/check.sh gates against their return.
//
// Cold solves are bit-identical to the free functions they replaced
// (pinned by tests/solver_facade_test.cpp against the PR 2 hexfloat
// goldens).  Warm-started solves (SolveOptions::warm_start = kWarm plus
// a Solver::State threaded between related solves) may take different
// iteration paths; the deviation is bounded by the documented tolerance
// (docs/API.md#warm-starts, enforced by the CLI selfcheck battery).
#pragma once

#include <optional>
#include <span>

#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/param_search.h"
#include "e2e/solve_state.h"

namespace deltanc {

/// Everything that parameterizes a solve besides the scenario itself.
/// Hashed (together with the scenario and the library version) into the
/// persistent cache key, so every field here must stay serializable.
struct SolveOptions {
  /// Theta optimization: exact breakpoint enumeration or the paper's
  /// K-procedure.
  e2e::Method method = e2e::Method::kExactOpt;
  /// Override the scenario's scheduler without copying the scenario by
  /// hand (e.g. one base scenario solved under every scheduler).  A bare
  /// sched::SchedulerKind converts implicitly.
  std::optional<sched::SchedulerSpec> scheduler;
  /// Solve at this fixed, already-resolved Delta instead of deriving it
  /// from the scheduler (skips the EDF fixed point entirely).
  std::optional<double> delta;
  /// EDF fixed-point retry policy: -1 = the solver's full damped-restart
  /// schedule (default, bit-identical to the historical behavior),
  /// 0 = no restarts, n = at most n restarts.
  int max_edf_restarts = -1;
  /// Reuse one workspace across Solver::optimize calls (allocation-free
  /// hot loops).  When false every call allocates its own buffers; the
  /// results are bit-identical either way.  Scenario-level solves manage
  /// their workspace internally and ignore this flag.
  bool reuse_workspace = true;
  /// Whether solve(sc, state) consumes the hints carried in the state
  /// (kWarm) or only refreshes it (kCold, the default: bit-identical to
  /// the stateless solve(sc)).  Stateless solves ignore this field.
  e2e::WarmStart warm_start = e2e::WarmStart::kCold;
};

/// The facade over the (gamma, s) parameter search and the theta
/// optimizers.  Cheap to construct; copyable.  solve()/solve_at() are
/// const and thread-safe; optimize() mutates the shared workspace when
/// options().reuse_workspace, so give each thread its own Solver there.
class Solver {
 public:
  /// Opaque warm-start context for solve(sc, state): carries the eb(s)
  /// memo, the stable-s bracket, the previous optimum, and the resolved
  /// EDF fixed point between related solves.  Thread it through a
  /// sequence of nearby scenarios (one State per sequence -- it is a
  /// hint channel, not shared state; never share one across threads).
  using State = e2e::SolveState;

  Solver() = default;
  explicit Solver(SolveOptions options) : options_(options) {}
  /// Convenience: a Solver differing from the defaults only in method.
  explicit Solver(e2e::Method method) { options_.method = method; }

  [[nodiscard]] const SolveOptions& options() const noexcept {
    return options_;
  }

  /// The scenario this Solver would actually solve: `sc` with the
  /// scheduler override (if any) applied.  Exposed so callers (and the
  /// cache key) can see the effective input.
  [[nodiscard]] e2e::Scenario effective_scenario(
      const e2e::Scenario& sc) const;

  /// Full scenario solve: resolves EDF deadlines by fixed point when
  /// needed (honoring max_edf_restarts), then optimizes (gamma, s).
  /// With options().delta set, solves at that fixed Delta instead.
  [[nodiscard]] e2e::BoundResult solve(const e2e::Scenario& sc) const;

  /// Stateful variant: per options().warm_start the solve consumes the
  /// context carried in `state` (kWarm; hints whose fingerprints do not
  /// match the scenario are ignored, so any state is safe to pass) or
  /// ignores it (kCold).  Either way the state is refreshed with this
  /// solve's context on return, ready for the next nearby scenario.
  [[nodiscard]] e2e::BoundResult solve(const e2e::Scenario& sc,
                                       State& state) const;

  /// Full d(epsilon) profile: one complete BoundResult per level of the
  /// given violation-probability grid (each in (0, 1); at least one).
  /// With options().warm_start == kCold (the default) every level is an
  /// independent full-budget solve, bit-identical to solve() of the same
  /// scenario at that epsilon -- the pinning contract.  With kWarm the
  /// levels are solved in descending-epsilon order, chained through one
  /// warm-start state at a reduced local-search budget; each level then
  /// stays within the documented warm-start tolerance of its cold value
  /// (docs/API.md#delay-profiles) while a multi-level profile solves
  /// several times faster than independent cold solves.  Levels are
  /// returned in the caller's epsilon order either way.
  [[nodiscard]] e2e::DelayProfile solve_profile(
      const e2e::Scenario& sc, std::span<const double> epsilons) const;

  /// Stateful profile solve: like solve(sc, state) the chain state is
  /// consumed per options().warm_start (the profile's first level can
  /// warm-start from a neighboring point's state) and is left holding
  /// the last-solved level's context on return.
  [[nodiscard]] e2e::DelayProfile solve_profile(const e2e::Scenario& sc,
                                                std::span<const double> epsilons,
                                                State& state) const;

  /// Scenario solve at an explicit fixed Delta (overrides
  /// options().delta for this call).
  [[nodiscard]] e2e::BoundResult solve_at(const e2e::Scenario& sc,
                                          double delta) const;

  /// One theta optimization (Eq. 39 exactly, or the paper's K-procedure,
  /// per options().method) at fixed (gamma, sigma).  With
  /// reuse_workspace (the default) consecutive calls share this Solver's
  /// buffers and the result is copied out.
  [[nodiscard]] e2e::DelayResult optimize(const e2e::PathParams& p,
                                          double gamma, double sigma) const;

 private:
  [[nodiscard]] e2e::detail::EngineRequest engine_request() const;

  SolveOptions options_;
  mutable e2e::SolveWorkspace workspace_;
};

}  // namespace deltanc
