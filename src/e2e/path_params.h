// Parameters of the homogeneous end-to-end scenario of Section IV:
// a through flow crossing H identical nodes (capacity C, Delta-scheduler
// with through/cross constant Delta_{0,c}), EBB through traffic
// A ~ (M, rho, alpha) and i.i.d. EBB cross traffic A_c^h ~ (M, rho_c, alpha)
// at every node.  Time in milliseconds, data in kilobits (rates = Mbps).
#pragma once

#include <stdexcept>
#include <vector>

namespace deltanc::e2e {

struct PathParams {
  double capacity;   ///< C, per-node link rate
  int hops;          ///< H >= 1
  double rho;        ///< through-traffic EBB rate
  double rho_cross;  ///< cross-traffic EBB rate per node
  double alpha;      ///< EBB decay (Chernoff parameter s)
  double m;          ///< EBB prefactor M (>= 1)
  double delta;      ///< Delta_{0,c}; may be +/-infinity (BMUX / SP-high)

  /// @throws std::invalid_argument on inconsistent values.
  void validate() const {
    if (!(capacity > 0.0)) throw std::invalid_argument("capacity must be > 0");
    if (hops < 1) throw std::invalid_argument("hops must be >= 1");
    if (!(rho >= 0.0) || !(rho_cross >= 0.0)) {
      throw std::invalid_argument("rates must be >= 0");
    }
    if (!(alpha > 0.0)) throw std::invalid_argument("alpha must be > 0");
    if (!(m >= 1.0)) throw std::invalid_argument("M must be >= 1");
    // delta may be anything including +/-inf, but not NaN.
    if (delta != delta) throw std::invalid_argument("delta must not be NaN");
  }

  /// Eq. (32): the per-node rate slack gamma must satisfy
  /// (H+1) gamma < C - rho_c - rho.  Returns that strict upper limit
  /// (<= 0 means the configuration is unstable).
  [[nodiscard]] double gamma_limit() const {
    return (capacity - rho_cross - rho) / (hops + 1);
  }
};

/// Result of the delay-bound optimization (Eq. (38)/(39)): the bound
/// itself plus the optimizing variables, for diagnostics and ablations.
struct DelayResult {
  double delay;               ///< d(sigma), in ms
  double x;                   ///< optimizing X = d - sum theta_h
  std::vector<double> theta;  ///< theta_1 .. theta_H
};

/// Reusable buffers for the Eq. (39) optimizers.  The (s, gamma)
/// parameter search evaluates `optimize_delay` / `k_procedure_delay`
/// thousands of times per scenario; passing one workspace through those
/// calls makes them allocation-free after the first call (every vector
/// keeps its capacity).  A workspace carries no results across calls --
/// each call overwrites it completely -- so a default-constructed one is
/// always valid input.
struct SolveWorkspace {
  std::vector<double> candidates;  ///< breakpoint candidates of Eq. (39)
  std::vector<double> node_cap;    ///< per-node C - (h-1) gamma
  std::vector<double> node_slack;  ///< per-node C - rho_c - h gamma
  DelayResult result;              ///< reused output slot (theta buffer)
};

/// Structure-of-arrays scratch of the batched gamma scan (one lane per
/// gamma probe of the inner scan; see e2e/scan_batch.h).  Laying the
/// per-lane quantities out as parallel arrays -- instead of one
/// PathParams + SolveWorkspace per probe -- is what lets the Eq. (39)
/// breakpoint enumeration run the same IEEE-exact arithmetic across all
/// lanes under `#pragma omp simd`.  Like SolveWorkspace, every call
/// overwrites it completely; a default-constructed batch is valid input
/// and the buffers keep their capacity across calls.
struct GammaScanBatch {
  std::vector<double> sigma;       ///< per-lane sigma(epsilon)(gamma)
  std::vector<double> rc;          ///< per-lane rho_cross + gamma
  std::vector<double> node_cap;    ///< hops x lanes, hop-major
  std::vector<double> node_slack;  ///< hops x lanes, hop-major
  std::vector<double> cand;        ///< candidates x lanes, candidate-major
  std::vector<double> obj;         ///< per-lane objective accumulator
  std::vector<double> best_f;      ///< per-lane running minimum
  std::vector<double> best_x;      ///< per-lane running argmin
};

}  // namespace deltanc::e2e
