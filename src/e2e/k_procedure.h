// The paper's explicit solution procedure for the optimization problem
// Eq. (38) (Section IV, Eqs. (40)-(42)).
//
// The minimum of X + sum_h theta_h(X) is located by identifying the
// index K at which d/dX changes sign: K is the smallest index with
//
//   sum_{h>K} (C - rho_c - h gamma) / (C - (h-1) gamma)  <  1        (40)
//
// and X is then chosen as
//   Delta >= 0:  X = sigma / (C - rho_c - K gamma)            (41)  (X=0 if K=0)
//   Delta <= 0:  X = max( sigma/(C-(K-1)gamma),
//                         (sigma + (rho_c+gamma) Delta)/(C - rho_c - K gamma) )
//                                                             (42)  (X=-Delta if K=0)
// For Delta >= 0 the paper additionally requires theta_h(X) > Delta for
// all h > K.  The paper notes these choices are near-optimal rather than
// optimal; bench/ablation_k_procedure quantifies the gap against the
// exact breakpoint enumeration of e2e/delay_bound.h.
#pragma once

#include "e2e/path_params.h"

namespace deltanc::e2e {

/// Runs the paper's K-procedure and returns the resulting (valid but
/// possibly slightly suboptimal) delay bound with its X and thetas.
/// Allocation-free (see optimize_delay's workspace contract): the
/// result's theta buffer lives in `ws` and is reused across calls.
/// (deltanc::Solver::optimize wraps this with method dispatch and an
/// owned workspace; the old workspace-less shim was removed in PR 9.)
const DelayResult& k_procedure_delay(const PathParams& p, double gamma,
                                     double sigma, SolveWorkspace& ws);

/// The K index selected by Eq. (40) (plus the theta > Delta side
/// condition when Delta >= 0); exposed for tests and ablations.
[[nodiscard]] int k_procedure_index(const PathParams& p, double gamma,
                                    double sigma);

}  // namespace deltanc::e2e
