// deltanc command-line interface: compute end-to-end delay bounds
// (optionally validate them by simulation), or fan a whole scenario grid
// out across all cores with the sweep engine -- without writing code.
//
//   deltanc_cli --hops 5 --scheduler fifo --u0 0.15 --uc 0.35
//   deltanc_cli --hops 10 --scheduler edf --edf-own 1 --edf-cross 10
//               --epsilon 1e-9 --simulate 200000   (one line)
//   deltanc_cli --u0 0.15 --sweep uc=0.05:0.80:16 --sweep scheduler=fifo,edf
//   deltanc_cli --sweep hops=2,5,10 --threads 4 --csv
//   deltanc_cli --sweep uc=0.1:0.8:8 --emit-batch > requests.jsonl
//   deltanc_cli --batch requests.jsonl --cache-dir ~/.cache/deltanc
//   deltanc_cli --serve /tmp/deltanc.sock --serve-workers 4
//               --cache-dir ~/.cache/deltanc   (one line)
//
// Run with --help for the full flag reference (kept in sync with
// README.md's flag table).  Unknown flags are rejected with a usage
// error, and the resolved scenario (C/H/scheduler/U0/Uc/eps) is printed
// before any results so logs are self-describing.
//
// Stream discipline: machine-parseable output (the --csv table, the
// --batch / --emit-batch JSONL) goes to stdout and *only* that; all
// human narration -- progress, summaries, stats, warnings, diagnostics
// -- goes to stderr, so every mode can be piped straight into a parser.
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/report.h"
#include "core/scenario.h"
#include "core/selfcheck.h"
#include "core/sweep.h"
#include "e2e/solver.h"
#include "io/batch.h"
#include "sched/scheduler_spec.h"
#include "serve/listener.h"

namespace {

using namespace deltanc;

// The scheduler name list is substituted from the one registry
// (sched::scheduler_usage_names) so this text can never drift from it.
constexpr const char* kUsageFormat = R"(usage: deltanc_cli [flags]

Scenario flags (defaults = the paper's Section-V setting):
  --capacity <Mbps>      link rate per node          (default 100)
  --hops <H>             path length                 (default 2)
  --n0 <count>           through flows               (default 100)
  --nc <count>           cross flows per node        (default 100)
  --u0 <frac>            through load (overrides --n0)
  --uc <frac>            cross load (overrides --nc)
  --epsilon <p>          violation probability       (default 1e-9)
  --scheduler <name>     %s
                         (default fifo; delta:<Delta> is the explicit
                         fixed-offset scheduler, Delta in ms or +/-inf)
  --edf-own <f>          EDF own-deadline factor     (default 1)
  --edf-cross <f>        EDF cross-deadline factor   (default 10)
  --method <name>        exact | paper-k             (default exact)

Single-point mode:
  --additive             also print the additive per-node baseline
  --report               print a full markdown report instead
  --simulate <slots>     validate against a simulation of that length
  --ccdf <lo:hi:pts>     solve the full d(epsilon) CCDF profile on a
                         log-spaced epsilon grid and print it as CSV on
                         stdout (full %%.17g precision); honors
                         --warm-start: warm (default) chains solver
                         state across levels, cold pins every level
                         bit-identical to a scalar solve at that epsilon
  --csv                  print the result as a one-row CSV (same columns
                         as the --ccdf profile CSV) instead of prose
  --stats                print solver instrumentation (eval counts, EDF
                         iterations, stage timings, profile counters);
                         in sweep mode the counters are summed over all
                         points

Sweep mode (repeatable; axes cross-multiply in the order given):
  --sweep <axis>=<lo>:<hi>:<steps>   numeric axis, evenly spaced
  --sweep <axis>=<v1>,<v2>,...       explicit values
      axes: hops, u0, uc, epsilon, capacity, delta, scheduler
      (scheduler takes names as above; the delta axis interpolates
      FIFO -> BMUX, e.g. --sweep delta=0:50:11)
  --threads <n>          sweep workers (default: DELTANC_THREADS env or
                         all cores); results are identical for any n
  --warm-start <policy>  warm | cold (default warm): warm chains solver
                         state along the innermost numeric sweep axis
                         (eb memo, stable-s bracket, previous optimum,
                         EDF fixed point); cold solves every point from
                         scratch, bit-identical to a single solve
  --csv                  print only the CSV of the sweep results
      with --ccdf, every sweep point additionally solves the whole
      d(epsilon) profile and the profile CSV (one row per point x
      level) is printed after -- or, with --csv, instead of -- the
      scalar sweep CSV

Self-check mode:
  --selfcheck            verify solver invariants (scheduler ordering,
                         monotonicity in H/U/eps and Delta, endpoint
                         pinning of the delta axis, exact vs paper-K
                         agreement, finiteness) on the Fig. 2-4 grids,
                         or on the --sweep grid when axes are given;
                         with a curve-backed --scheduler (gps/drr/sced)
                         runs the curve battery instead (share/quantum
                         monotonicity, SP-high <= GPS, GPS <= DRR,
                         sced == gps on symmetric loads, GPS isolation
                         at overload)

Batch service mode (JSONL on stdout, narration on stderr):
  --batch <file|->       answer one JSON solve request per input line
                         ({"schema":N,"scenario":{...},"options":{...},
                         "id":...}); responses stream in input order;
                         a request carrying a non-empty "epsilons"
                         array is a profile request and is answered
                         with the full d(epsilon) artifact
  --emit-batch           print the scenario (or --sweep grid) as a
                         batch request file instead of solving it;
                         with --ccdf each request carries the epsilon
                         grid (i.e. becomes a profile request)
  --cache-dir <dir>      persistent result cache directory (default:
                         DELTANC_CACHE_DIR env; no caching when unset)
  --lint-jsonl <file|->  parse+decode a request/response file, report
                         the first malformed line, solve nothing

Persistent service mode (long-running; same JSONL protocol):
  --serve <socket>       serve batch requests on a Unix-domain socket,
                         keeping workspaces, eb-memos, and the result
                         cache warm across requests (keyspace sharded
                         across the workers); SIGTERM/SIGINT drain --
                         every accepted request is answered -- and
                         SIGHUP drops the warm layer and reopens the
                         cache directory
  --serve-workers <n>    worker (= cache shard) count
                         (default: the --threads rule)
  --serve-queue <n>      per-worker queue depth; a full queue answers
                         a classified overload error     (default 512)
  --serve-memory <n>     per-worker in-memory warm results, 0 = disk
                         cache only                    (default 65536)
  --deadline-ms <ms>     per-request deadline; an overrun is answered
                         as a classified timeout and the worker is
                         replaced                 (default: no limit)
  --fault-plan <spec>    deterministic fault injection (flag wins over
                         the DELTANC_FAULT_PLAN env var); entries
                         kill:<worker>:<k>; delay:<id>:<ms>;
                         store-fail:<n>; load-corrupt:<n>, joined
                         with ';'

Exit codes: 0 all ok; 1 failed points / bound violated / self-check
issues / malformed batch lines; 2 usage error or invalid scenario;
3 completed but some points carry warnings or needed recoveries
(including corrupt-cache-entry re-solves and failed cache stores);
4 the output consumer hung up before every response was written.

  --help                 this text
)";

void print_usage(std::FILE* out) {
  std::fprintf(out, kUsageFormat, sched::scheduler_usage_names().c_str());
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "deltanc_cli: %s\n", message.c_str());
  print_usage(stderr);
  std::exit(2);
}

double parse_double(const char* value, const char* flag) {
  // Strict and locale-independent: no leading whitespace, '+', or
  // hexfloat forms -- "--capacity 0x50" is a typo, not 80 Mbps.
  double parsed = 0.0;
  if (!sched::parse_strict_double(value, parsed)) {
    usage_error(std::string("bad numeric value for ") + flag);
  }
  return parsed;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

/// One --sweep flag: axis name + value list, applied to a SweepGrid.
/// A scheduler axis of bare kind names replays through the kind overload
/// (keeping the base's --edf-own/--edf-cross factors, the historical
/// behavior); one containing a "delta:<v>" spec replaces specs wholesale.
struct SweepAxisSpec {
  std::string axis;
  std::vector<double> numeric;
  std::vector<sched::SchedulerKind> scheduler_kinds;
  std::vector<sched::SchedulerSpec> schedulers;
};

SweepAxisSpec parse_sweep_spec(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    usage_error("bad --sweep spec '" + spec + "' (want axis=values)");
  }
  SweepAxisSpec out;
  out.axis = spec.substr(0, eq);
  const std::string values = spec.substr(eq + 1);

  if (out.axis == "scheduler") {
    // Weight lists reuse the comma ("gps:1,2"), so the value list cannot
    // be split naively: parse_scheduler_list resolves the ambiguity by
    // maximal munch (each name claims the longest run that parses).
    if (!sched::parse_scheduler_list(values, out.schedulers)) {
      usage_error("bad scheduler list '" + values + "' in --sweep");
    }
    bool kinds_only = true;
    for (const sched::SchedulerSpec& s : out.schedulers) {
      sched::SchedulerKind k{};
      kinds_only = kinds_only && scheduler_from_name(sched::to_string(s), k);
      if (kinds_only) out.scheduler_kinds.push_back(k);
    }
    if (!kinds_only) out.scheduler_kinds.clear();
    return out;
  }
  if (out.axis != "hops" && out.axis != "u0" && out.axis != "uc" &&
      out.axis != "epsilon" && out.axis != "capacity" &&
      out.axis != "delta") {
    usage_error("unknown sweep axis '" + out.axis + "'");
  }
  if (values.find(':') != std::string::npos) {
    const std::vector<std::string> parts = split(values, ':');
    if (parts.size() != 3) {
      usage_error("bad --sweep range '" + values + "' (want lo:hi:steps)");
    }
    const double lo = parse_double(parts[0].c_str(), "--sweep");
    const double hi = parse_double(parts[1].c_str(), "--sweep");
    const double steps = parse_double(parts[2].c_str(), "--sweep");
    if (steps < 1 || steps != std::floor(steps)) {
      usage_error("--sweep steps must be a positive integer");
    }
    out.numeric = SweepGrid::linspace(lo, hi, static_cast<int>(steps));
  } else {
    for (const std::string& v : split(values, ',')) {
      out.numeric.push_back(parse_double(v.c_str(), "--sweep"));
    }
  }
  return out;
}

void apply_axis(SweepGrid& grid, const SweepAxisSpec& spec) {
  if (spec.axis == "scheduler") {
    if (!spec.scheduler_kinds.empty()) {
      grid.scheduler_axis(spec.scheduler_kinds);
    } else {
      grid.scheduler_axis(spec.schedulers);
    }
  } else if (spec.axis == "delta") {
    grid.delta_axis(spec.numeric);
  } else if (spec.axis == "hops") {
    std::vector<int> hops;
    for (double v : spec.numeric) {
      hops.push_back(static_cast<int>(std::lround(v)));
    }
    grid.hops_axis(hops);
  } else if (spec.axis == "u0") {
    grid.through_utilization_axis(spec.numeric);
  } else if (spec.axis == "uc") {
    grid.cross_utilization_axis(spec.numeric);
  } else if (spec.axis == "epsilon") {
    grid.epsilon_axis(spec.numeric);
  } else {  // capacity (parse_sweep_spec rejected everything else)
    grid.capacity_axis(spec.numeric);
  }
}

void print_scenario(const e2e::Scenario& sc, std::FILE* out = stdout) {
  const double u0 = sc.n_through * sc.source.mean_rate() / sc.capacity;
  const double uc = sc.n_cross * sc.source.mean_rate() / sc.capacity;
  std::fprintf(out,
               "scenario: C = %.1f Mbps, H = %d, scheduler = %s, "
               "N0 = %d (U0 = %.1f%%), Nc = %d (Uc = %.1f%%), "
               "U = %.1f%%, eps = %g",
               sc.capacity, sc.hops, scheduler_name(sc.scheduler).c_str(),
               sc.n_through, 100.0 * u0, sc.n_cross, 100.0 * uc,
               100.0 * sc.utilization(), sc.epsilon);
  if (sc.scheduler == sched::SchedulerKind::kEdf) {
    const sched::EdfFactors& edf = sc.scheduler.edf_factors();
    std::fprintf(out, ", edf = %g/%g", edf.own_factor, edf.cross_factor);
  }
  std::fprintf(out, "\n");
}

/// One machine-friendly key=value line (greppable by scripts/check.sh).
void print_stats(const e2e::SolveStats& stats, std::FILE* out) {
  std::fprintf(out,
               "stats: optimize_evals=%lld eb_evals=%lld sigma_evals=%lld "
               "edf_iterations=%d edf_converged=%s retries=%d fallbacks=%d "
               "scan_ms=%.2f refine_ms=%.2f batched_evals=%lld "
               "warm_start_hits=%lld brackets_reused=%lld "
               "profile_levels=%lld profile_chain_hits=%lld\n",
               static_cast<long long>(stats.optimize_evals),
               static_cast<long long>(stats.eb_evals),
               static_cast<long long>(stats.sigma_evals),
               stats.edf_iterations, stats.edf_converged ? "yes" : "no",
               stats.retries, stats.fallbacks, stats.scan_ms,
               stats.refine_ms, static_cast<long long>(stats.batched_evals),
               static_cast<long long>(stats.warm_start_hits),
               static_cast<long long>(stats.brackets_reused),
               static_cast<long long>(stats.profile_levels),
               static_cast<long long>(stats.profile_chain_hits));
}

/// --ccdf lo:hi:points -> the log-spaced epsilon grid (caller order
/// lo -> hi; the profile engine reorders internally for warm chaining
/// but reports levels in this order).
std::vector<double> parse_ccdf_spec(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() != 3) {
    usage_error("bad --ccdf spec '" + spec + "' (want lo:hi:points)");
  }
  const double lo = parse_double(parts[0].c_str(), "--ccdf");
  const double hi = parse_double(parts[1].c_str(), "--ccdf");
  const double points = parse_double(parts[2].c_str(), "--ccdf");
  if (!(lo > 0.0) || !(lo < 1.0) || !(hi > 0.0) || !(hi < 1.0)) {
    usage_error("--ccdf epsilons must be in (0, 1)");
  }
  if (points < 1 || points != std::floor(points)) {
    usage_error("--ccdf points must be a positive integer");
  }
  const int n = static_cast<int>(points);
  std::vector<double> eps;
  eps.reserve(static_cast<std::size_t>(n));
  if (n == 1) {
    eps.push_back(lo);
    return eps;
  }
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (int i = 0; i < n; ++i) {
    eps.push_back(std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                     static_cast<double>(n - 1)));
  }
  return eps;
}

/// One "warning: <kind>: <detail>" line per diagnostic warning.
void print_warnings(const e2e::BoundResult& bound, std::FILE* out) {
  for (const diag::Warning& w : bound.diagnostics.warnings) {
    std::fprintf(out, "warning: %s: %s\n", diag::solve_error_name(w.kind),
                 w.message.c_str());
  }
}

/// Opens `path` ("-" = stdin) into `file`; returns the stream to read.
std::istream* open_input(const std::string& path, std::ifstream& file) {
  if (path == "-") return &std::cin;
  file.open(path);
  if (!file) {
    std::fprintf(stderr, "deltanc_cli: cannot open %s\n", path.c_str());
    return nullptr;
  }
  return &file;
}

/// --emit-batch: the scenario (or the --sweep grid over it) rendered as
/// a JSONL request file on stdout, one request per grid point.  A
/// non-empty `ccdf_epsilons` (--ccdf) turns every line into a profile
/// request by attaching the epsilon grid.
int run_emit_batch(const SweepGrid& grid, e2e::Method method,
                   const std::vector<double>& ccdf_epsilons) {
  SolveOptions options;
  options.method = method;
  const std::size_t n = grid.size();
  for (std::size_t i = 0; i < n; ++i) {
    io::json::Value req = io::json::Value::object();
    req.set("schema", io::json::Value::number(io::kSchemaVersion))
        .set("id", io::json::Value::number(static_cast<double>(i)))
        .set("scenario", io::encode_scenario(grid.scenario_at(i)))
        .set("options", io::encode_solve_options(options));
    if (!ccdf_epsilons.empty()) {
      io::json::Value eps = io::json::Value::array();
      for (double e : ccdf_epsilons) {
        eps.push_back(io::encode_double(e));
      }
      req.set("epsilons", std::move(eps));
    }
    std::cout << req.dump() << '\n';
  }
  std::fprintf(stderr, "emit-batch: %zu request(s)%s\n", n,
               ccdf_epsilons.empty() ? "" : " (profile)");
  return 0;
}

/// --batch: JSONL requests in, JSONL responses out (stdout stays pure;
/// the summary, cache traffic, and stats land on stderr).
int run_batch_mode(const std::string& path, int threads, e2e::Method method,
                   const std::string& cache_dir, bool want_stats) {
  std::ifstream file;
  std::istream* in = open_input(path, file);
  if (in == nullptr) return 2;

  std::optional<io::ResultCache> cache;
  // --cache-dir wins over DELTANC_CACHE_DIR; neither set = no caching.
  const std::filesystem::path dir =
      cache_dir.empty() ? io::ResultCache::directory_from_env({})
                        : std::filesystem::path(cache_dir);
  if (!dir.empty()) {
    try {
      cache.emplace(dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "deltanc_cli: %s\n", e.what());
      return 2;
    }
  }

  io::BatchOptions options;
  options.threads = threads;
  options.default_method = method;
  options.cache = cache.has_value() ? &*cache : nullptr;
  options.progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\rsolving %zu/%zu", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  const io::BatchSummary summary = io::run_batch(*in, std::cout, options);
  std::fprintf(stderr,
               "batch: requests=%lld cached=%lld solved=%lld "
               "parse_errors=%lld failed=%lld wall_ms=%.3f\n",
               static_cast<long long>(summary.requests),
               static_cast<long long>(summary.cached),
               static_cast<long long>(summary.solved),
               static_cast<long long>(summary.parse_errors),
               static_cast<long long>(summary.failed), summary.wall_ms);
  if (cache.has_value()) {
    const io::CacheStats& cs = summary.cache_stats;
    std::fprintf(stderr,
                 "cache: dir=%s hits=%lld misses=%lld stale=%lld "
                 "corrupt=%lld stores=%lld store_failures=%lld\n",
                 cache->directory().c_str(), static_cast<long long>(cs.hits),
                 static_cast<long long>(cs.misses),
                 static_cast<long long>(cs.stale),
                 static_cast<long long>(cs.corrupt),
                 static_cast<long long>(cs.stores),
                 static_cast<long long>(cs.store_failures));
    if (cs.store_failures > 0) {
      std::fprintf(stderr,
                   "warning: %lld cache store(s) failed; those results were "
                   "solved through and answered uncached\n",
                   static_cast<long long>(cs.store_failures));
    }
  }
  if (want_stats) print_stats(summary.stats, stderr);
  if (summary.output_failed) {
    std::fprintf(stderr,
                 "batch: output closed early; %lld response(s) were never "
                 "written\n",
                 static_cast<long long>(summary.requests - summary.responses));
    return 4;
  }
  if (summary.parse_errors > 0 || summary.failed > 0) return 1;
  return (summary.cache_stats.corrupt > 0 ||
          summary.cache_stats.store_failures > 0)
             ? 3
             : 0;
}

/// --lint-jsonl: every non-blank line must parse as JSON, carry the
/// supported schema, and decode as a request and/or response payload.
int run_lint_jsonl(const std::string& path) {
  std::ifstream file;
  std::istream* in = open_input(path, file);
  if (in == nullptr) return 2;
  std::string line;
  std::size_t line_no = 0, checked = 0, bad = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++checked;
    try {
      const io::json::Value doc = io::json::Value::parse(line);
      io::require_schema(doc);
      if (const io::json::Value* sc = doc.find("scenario")) {
        (void)io::decode_scenario(*sc);
      }
      if (const io::json::Value* o = doc.find("options");
          o != nullptr && !o->is_null()) {
        (void)io::decode_solve_options(*o);
      }
      if (const io::json::Value* r = doc.find("result")) {
        (void)io::decode_bound_result(*r);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lint: %s:%zu: %s\n", path.c_str(), line_no,
                   e.what());
      ++bad;
    }
  }
  std::fprintf(stderr, "lint: %zu line(s) checked, %zu malformed\n", checked,
               bad);
  return bad > 0 ? 1 : 0;
}

// ----- --serve ------------------------------------------------------------

// Signal flags for the persistent service: the accept loop polls these
// between accepts (async-signal-safe -- handlers only set a flag).
volatile std::sig_atomic_t g_serve_stop = 0;
volatile std::sig_atomic_t g_serve_reload = 0;

extern "C" void serve_stop_handler(int) { g_serve_stop = 1; }
extern "C" void serve_reload_handler(int) { g_serve_reload = 1; }

struct ServeCliOptions {
  std::string socket_path;
  int workers = 0;             ///< 0 = the --threads rule
  std::size_t queue_depth = 512;
  std::size_t memory_entries = 1 << 16;
  double deadline_ms = 0.0;
  std::string fault_spec;      ///< "" = DELTANC_FAULT_PLAN env, if set
};

/// --serve: the persistent solve service on a Unix-domain socket.
/// Returns 0 on a clean SIGTERM/SIGINT drain (every accepted request
/// answered), 2 when the socket or cache directory cannot be set up.
int run_serve_mode(const ServeCliOptions& cli, int threads,
                   e2e::Method method, const std::string& cache_dir) {
  std::string spec = cli.fault_spec;
  if (spec.empty()) {
    if (const char* env = std::getenv("DELTANC_FAULT_PLAN")) spec = env;
  }
  serve::ServeOptions options;
  std::string fault_error;
  if (!serve::FaultPlan::parse(spec, options.faults, fault_error)) {
    usage_error("--fault-plan: " + fault_error);
  }
  options.workers = cli.workers > 0 ? cli.workers : threads;
  options.queue_depth = cli.queue_depth;
  options.memory_entries = cli.memory_entries;
  options.deadline_ms = cli.deadline_ms;
  options.default_method = method;
  options.cache_dir = cache_dir.empty()
                          ? io::ResultCache::directory_from_env({})
                          : std::filesystem::path(cache_dir);

  std::signal(SIGTERM, serve_stop_handler);
  std::signal(SIGINT, serve_stop_handler);
  std::signal(SIGHUP, serve_reload_handler);

  std::optional<serve::SolveService> service;
  try {
    service.emplace(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deltanc_cli: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "serve: listening on %s (%d worker(s), queue %zu, "
               "deadline %s, cache %s)%s%s\n",
               cli.socket_path.c_str(), service->workers(),
               options.queue_depth,
               options.deadline_ms > 0
                   ? (std::to_string(options.deadline_ms) + " ms").c_str()
                   : "off",
               options.cache_dir.empty() ? "off"
                                         : options.cache_dir.c_str(),
               options.faults.empty() ? "" : ", faults ",
               options.faults.empty() ? ""
                                      : options.faults.to_string().c_str());

  serve::ListenerOptions listener;
  listener.socket_path = cli.socket_path;
  listener.stop = &g_serve_stop;
  listener.reload = &g_serve_reload;
  const bool clean = serve::run_socket_server(*service, listener, std::cerr);
  service->drain();  // idempotent; covers the bind-failure early return

  const serve::ServeStats stats = service->stats();
  std::fprintf(stderr,
               "serve: received=%lld answered=%lld solved=%lld served=%lld "
               "memory_hits=%lld parse_errors=%lld failed=%lld\n",
               static_cast<long long>(stats.received),
               static_cast<long long>(stats.answered),
               static_cast<long long>(stats.solved),
               static_cast<long long>(stats.served),
               static_cast<long long>(stats.memory_hits),
               static_cast<long long>(stats.parse_errors),
               static_cast<long long>(stats.failed));
  std::fprintf(stderr,
               "serve: timeouts=%lld overloads=%lld worker_losses=%lld "
               "requeues=%lld exhausted=%lld discarded=%lld dropped=%lld "
               "respawns=%d reloads=%d\n",
               static_cast<long long>(stats.timeouts),
               static_cast<long long>(stats.overloads),
               static_cast<long long>(stats.worker_losses),
               static_cast<long long>(stats.requeues),
               static_cast<long long>(stats.exhausted),
               static_cast<long long>(stats.discarded),
               static_cast<long long>(stats.dropped), stats.respawns,
               stats.reloads);
  if (!options.cache_dir.empty()) {
    const io::CacheStats& cs = stats.cache;
    std::fprintf(stderr,
                 "cache: dir=%s hits=%lld misses=%lld stale=%lld "
                 "corrupt=%lld stores=%lld store_failures=%lld\n",
                 options.cache_dir.c_str(), static_cast<long long>(cs.hits),
                 static_cast<long long>(cs.misses),
                 static_cast<long long>(cs.stale),
                 static_cast<long long>(cs.corrupt),
                 static_cast<long long>(cs.stores),
                 static_cast<long long>(cs.store_failures));
  }
  return clean ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // A consumer hanging up mid-pipe (`--batch | head`, a serve client
  // disconnecting) must surface as a classified exit code, not a
  // SIGPIPE death: writes fail with EPIPE / a bad stream instead.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  ScenarioBuilder builder;
  e2e::Method method = e2e::Method::kExactOpt;
  bool want_additive = false;
  bool want_report = false;
  bool want_stats = false;
  bool want_selfcheck = false;
  bool csv_only = false;
  bool want_emit_batch = false;
  long long simulate_slots = 0;
  double edf_own = 1.0, edf_cross = 10.0;
  bool scheduler_is_edf = false;
  int threads = 0;
  e2e::WarmStart warm_start = e2e::WarmStart::kWarm;
  std::string batch_path;
  std::string lint_path;
  std::string cache_dir;
  std::vector<double> ccdf_epsilons;
  ServeCliOptions serve_cli;
  std::vector<SweepAxisSpec> sweep_axes;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value after " + flag);
      return argv[++i];
    };
    if (flag == "--capacity") {
      builder.capacity_mbps(parse_double(next(), "--capacity"));
    } else if (flag == "--hops") {
      builder.hops(static_cast<int>(parse_double(next(), "--hops")));
    } else if (flag == "--n0") {
      builder.through_flows(static_cast<int>(parse_double(next(), "--n0")));
    } else if (flag == "--nc") {
      builder.cross_flows(static_cast<int>(parse_double(next(), "--nc")));
    } else if (flag == "--u0") {
      builder.through_utilization(parse_double(next(), "--u0"));
    } else if (flag == "--uc") {
      builder.cross_utilization(parse_double(next(), "--uc"));
    } else if (flag == "--epsilon") {
      builder.violation_probability(parse_double(next(), "--epsilon"));
    } else if (flag == "--edf-own") {
      edf_own = parse_double(next(), "--edf-own");
    } else if (flag == "--edf-cross") {
      edf_cross = parse_double(next(), "--edf-cross");
    } else if (flag == "--scheduler") {
      const std::string name = next();
      sched::SchedulerSpec s;
      if (!scheduler_from_name(name, s)) {
        usage_error("unknown scheduler '" + name + "'");
      }
      builder.scheduler(s);
      scheduler_is_edf = s == sched::SchedulerKind::kEdf;
    } else if (flag == "--method") {
      const std::string name = next();
      if (name == "exact") {
        method = e2e::Method::kExactOpt;
      } else if (name == "paper-k") {
        method = e2e::Method::kPaperK;
      } else {
        usage_error("unknown method '" + name + "'");
      }
    } else if (flag == "--additive") {
      want_additive = true;
    } else if (flag == "--report") {
      want_report = true;
    } else if (flag == "--stats") {
      want_stats = true;
    } else if (flag == "--csv") {
      csv_only = true;
    } else if (flag == "--simulate") {
      simulate_slots =
          static_cast<long long>(parse_double(next(), "--simulate"));
    } else if (flag == "--threads") {
      threads = static_cast<int>(parse_double(next(), "--threads"));
      if (threads < 1) usage_error("--threads must be >= 1");
    } else if (flag == "--warm-start") {
      const std::string policy = next();
      if (policy == "warm") {
        warm_start = e2e::WarmStart::kWarm;
      } else if (policy == "cold") {
        warm_start = e2e::WarmStart::kCold;
      } else {
        usage_error("unknown --warm-start policy '" + policy +
                    "' (want warm or cold)");
      }
    } else if (flag == "--ccdf") {
      ccdf_epsilons = parse_ccdf_spec(next());
    } else if (flag == "--sweep") {
      sweep_axes.push_back(parse_sweep_spec(next()));
    } else if (flag == "--selfcheck") {
      want_selfcheck = true;
    } else if (flag == "--batch") {
      batch_path = next();
    } else if (flag == "--emit-batch") {
      want_emit_batch = true;
    } else if (flag == "--cache-dir") {
      cache_dir = next();
    } else if (flag == "--serve") {
      serve_cli.socket_path = next();
    } else if (flag == "--serve-workers") {
      serve_cli.workers =
          static_cast<int>(parse_double(next(), "--serve-workers"));
      if (serve_cli.workers < 1) usage_error("--serve-workers must be >= 1");
    } else if (flag == "--serve-queue") {
      const double depth = parse_double(next(), "--serve-queue");
      if (depth < 1) usage_error("--serve-queue must be >= 1");
      serve_cli.queue_depth = static_cast<std::size_t>(depth);
    } else if (flag == "--serve-memory") {
      const double entries = parse_double(next(), "--serve-memory");
      if (entries < 0) usage_error("--serve-memory must be >= 0");
      serve_cli.memory_entries = static_cast<std::size_t>(entries);
    } else if (flag == "--deadline-ms") {
      serve_cli.deadline_ms = parse_double(next(), "--deadline-ms");
      if (serve_cli.deadline_ms <= 0) {
        usage_error("--deadline-ms must be > 0");
      }
    } else if (flag == "--fault-plan") {
      serve_cli.fault_spec = next();
    } else if (flag == "--lint-jsonl") {
      lint_path = next();
    } else if (flag == "--help" || flag == "-h") {
      print_usage(stdout);
      return 0;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (scheduler_is_edf) builder.edf_deadlines(edf_own, edf_cross);

  // build() collects *all* violations in one pass, so a malformed
  // invocation reports every bad field at once (exit code 2, like other
  // usage errors, but without drowning the message in the flag table).
  e2e::Scenario scenario;
  try {
    scenario = builder.build();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "deltanc_cli: invalid scenario: %s\n", e.what());
    return 2;
  }

  if (!lint_path.empty()) {
    return run_lint_jsonl(lint_path);
  }
  if (!serve_cli.socket_path.empty()) {
    if (!batch_path.empty() || want_selfcheck || want_emit_batch ||
        want_report || want_additive || simulate_slots > 0 || csv_only ||
        !sweep_axes.empty() || !ccdf_epsilons.empty()) {
      usage_error("--serve cannot be combined with other modes");
    }
    return run_serve_mode(serve_cli, threads, method, cache_dir);
  }
  if (!batch_path.empty()) {
    if (want_selfcheck || want_emit_batch || want_report || want_additive ||
        simulate_slots > 0 || csv_only || !sweep_axes.empty() ||
        !ccdf_epsilons.empty()) {
      usage_error("--batch cannot be combined with other modes");
    }
    return run_batch_mode(batch_path, threads, method, cache_dir, want_stats);
  }
  if (want_emit_batch) {
    if (want_selfcheck || want_report || want_additive || simulate_slots > 0 ||
        csv_only) {
      usage_error("--emit-batch cannot be combined with --selfcheck / "
                  "--report / --additive / --simulate / --csv");
    }
    SweepGrid grid(scenario);
    for (const SweepAxisSpec& spec : sweep_axes) apply_axis(grid, spec);
    return run_emit_batch(grid, method, ccdf_epsilons);
  }

  if (want_selfcheck) {
    if (want_report || want_additive || simulate_slots > 0 || csv_only ||
        !ccdf_epsilons.empty()) {
      usage_error("--selfcheck cannot be combined with --report / "
                  "--additive / --simulate / --csv / --ccdf");
    }
    SelfCheckOptions options;
    options.threads = threads;
    options.method = method;
    SelfCheckReport report;
    if (!sweep_axes.empty()) {
      SweepGrid grid(scenario);
      for (const SweepAxisSpec& spec : sweep_axes) apply_axis(grid, spec);
      std::printf("self-check: sweep grid, %zu scenarios\n", grid.size());
      report = self_check(grid, options);
    } else if (scenario.scheduler.is_curve_backed()) {
      std::printf("self-check: curve-backed scheduler battery "
                  "(GPS/DRR/SCED orderings + isolation)\n");
      report = self_check_curve_backed(options);
    } else {
      std::printf("self-check: Fig. 2-4 operating grids\n");
      report = self_check_figures(options);
    }
    for (const SelfCheckIssue& issue : report.issues) {
      std::printf("issue [%s]: %s\n", issue.check.c_str(),
                  issue.detail.c_str());
    }
    std::printf("self-check: %s\n", report.summary().c_str());
    return report.ok() ? 0 : 1;
  }

  if (!sweep_axes.empty()) {
    if (want_report || want_additive || simulate_slots > 0) {
      usage_error("--sweep cannot be combined with --report / --additive / "
                  "--simulate");
    }
    SweepGrid grid(scenario);
    for (const SweepAxisSpec& spec : sweep_axes) apply_axis(grid, spec);

    // Narration always goes to stderr so `--csv` (and plain sweeps piped
    // somewhere) keep stdout machine-parseable.
    std::FILE* info = stderr;
    std::fprintf(info, "base ");
    print_scenario(scenario, info);
    std::fprintf(info, "sweep: %zu points (", grid.size());
    for (std::size_t a = 0; a < grid.axes(); ++a) {
      std::fprintf(info, "%s%s:%zu", a ? " x " : "", grid.axis_name(a).c_str(),
                   grid.axis_size(a));
    }
    std::fprintf(info, ")\n");

    SweepOptions opts;
    opts.threads = threads;
    opts.method = method;
    opts.warm_start = warm_start;
    opts.profile_epsilons = ccdf_epsilons;
    opts.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rsolving %zu/%zu", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
    const SweepReport report = SweepRunner(opts).run(grid);

    if (csv_only) {
      // With --ccdf the profile CSV *is* the machine output (one header,
      // one row per point x level); without it, the scalar sweep CSV.
      if (!ccdf_epsilons.empty()) {
        report.write_profile_csv(std::cout);
      } else {
        report.write_csv(std::cout);
      }
    } else {
      report.to_table().print(std::cout);
      std::printf("\ncsv:\n");
      report.write_csv(std::cout);
      if (!ccdf_epsilons.empty()) {
        std::printf("\nprofile csv:\n");
        report.write_profile_csv(std::cout);
      }
    }
    std::FILE* tail = stderr;
    std::fprintf(tail,
                 "sweep: %zu points in %.0f ms on %d thread(s); "
                 "%zu unstable, %zu failed, %zu warned, %zu recovered\n",
                 report.points.size(), report.wall_ms, report.threads,
                 report.unstable(), report.failures(), report.warned(),
                 report.recovered());
    const diag::ErrorCounts counts = report.counts_by_kind();
    if (counts.total_errors() + counts.total_warnings() > 0) {
      std::fprintf(tail, "diagnostics: %s\n", counts.summary().c_str());
    }
    if (counts.warnings[static_cast<std::size_t>(
            diag::SolveErrorKind::kNoConvergence)] > 0) {
      std::fprintf(stderr,
                   "warning: some EDF fixed points did not converge; their "
                   "bounds use the last iterate (see the warn: rows)\n");
    }
    if (want_stats) print_stats(report.stats, tail);
    if (report.failures() > 0) return 1;
    return (report.warned() + report.recovered() > 0) ? 3 : 0;
  }

  if (!ccdf_epsilons.empty()) {
    if (want_report || want_additive || simulate_slots > 0) {
      usage_error("--ccdf cannot be combined with --report / --additive / "
                  "--simulate");
    }
    // stdout carries only the profile CSV; narration goes to stderr.
    print_scenario(scenario, stderr);
    SolveOptions profile_options;
    profile_options.method = method;
    profile_options.warm_start = warm_start;
    const Solver solver(profile_options);
    e2e::DelayProfile profile;
    try {
      profile = solver.solve_profile(scenario, ccdf_epsilons);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "deltanc_cli: profile solve failed: %s\n",
                   e.what());
      return 1;
    }
    SweepReport one;
    one.points.resize(1);
    one.points[0].scenario = scenario;
    one.points[0].profile = profile;
    one.write_profile_csv(std::cout);
    for (std::size_t i = 0; i < profile.levels.size(); ++i) {
      for (const diag::Warning& w : profile.levels[i].diagnostics.warnings) {
        std::fprintf(stderr, "warning: [eps=%g] %s: %s\n",
                     profile.epsilons[i], diag::solve_error_name(w.kind),
                     w.message.c_str());
      }
    }
    if (want_stats) print_stats(profile.stats, stderr);
    // Stability (and hence finiteness) does not depend on epsilon, so
    // the first level speaks for the whole profile.
    return std::isfinite(profile.levels.front().delay_ms) ? 0 : 1;
  }

  if (want_report) {
    ReportOptions options;
    options.simulate_slots = simulate_slots;
    std::printf("%s", render_report(scenario, options).c_str());
    return 0;
  }
  const PathAnalyzer analyzer(scenario);

  if (csv_only) {
    if (want_additive || simulate_slots > 0) {
      usage_error("--csv (single-point) cannot be combined with --additive / "
                  "--simulate");
    }
    // One row in the profile CSV shape, carrying the scalar solve at the
    // scenario's own epsilon -- byte-comparable against any --ccdf level
    // of the same scenario (scripts/check.sh gates on exactly that).
    print_scenario(scenario, stderr);
    const e2e::BoundResult bound = analyzer.bound(method);
    SweepReport one;
    one.points.resize(1);
    one.points[0].scenario = scenario;
    e2e::DelayProfile single;
    single.epsilons = {scenario.epsilon};
    single.levels = {bound};
    one.points[0].profile = std::move(single);
    one.write_profile_csv(std::cout);
    print_warnings(bound, stderr);
    if (want_stats) print_stats(bound.stats, stderr);
    return std::isfinite(bound.delay_ms) ? 0 : 1;
  }

  print_scenario(scenario);

  const e2e::BoundResult bound = analyzer.bound(method);
  if (!std::isfinite(bound.delay_ms)) {
    std::printf("bound: %s\n",
                bound.diagnostics.ok()
                    ? "unstable configuration (offered load >= capacity)"
                    : bound.diagnostics.message.c_str());
    return 1;
  }
  if (scenario.scheduler.is_curve_backed()) {
    // Curve-backed schedulers have no Delta coordinate (bound.delta is
    // NaN by contract).
    std::printf("end-to-end delay bound: %.3f ms  "
                "(gamma = %.4f, s = %.4f, Delta = n/a)\n",
                bound.delay_ms, bound.gamma, bound.s);
  } else {
    std::printf("end-to-end delay bound: %.3f ms  "
                "(gamma = %.4f, s = %.4f, Delta = %g)\n",
                bound.delay_ms, bound.gamma, bound.s, bound.delta);
  }
  print_warnings(bound, stderr);
  if (want_stats) print_stats(bound.stats, stderr);

  if (want_additive) {
    std::printf("additive per-node baseline (BMUX): %.3f ms\n",
                analyzer.additive_bound().delay_ms);
  }
  if (simulate_slots > 0) {
    const ValidationReport r = analyzer.validate(simulate_slots);
    std::printf("simulation (%lld slots): quantile@%.2e = %.2f ms, "
                "max = %.2f ms, bound %s\n",
                simulate_slots, r.epsilon_sim, r.empirical_quantile,
                r.empirical_max, r.bound_holds ? "holds" : "VIOLATED");
    return r.bound_holds ? 0 : 1;
  }
  return 0;
}
