// deltanc command-line interface: compute end-to-end delay bounds (and
// optionally validate them by simulation) without writing any code.
//
//   deltanc_cli --hops 5 --scheduler fifo --u0 0.15 --uc 0.35
//   deltanc_cli --hops 10 --scheduler edf --edf-own 1 --edf-cross 10
//               --epsilon 1e-9 --simulate 200000   (one line)
//
// Flags (all optional, defaults = the paper's Section-V setting):
//   --capacity <Mbps>      link rate per node          (default 100)
//   --hops <H>             path length                 (default 2)
//   --n0 <count>           through flows               (default 100)
//   --nc <count>           cross flows per node        (default 100)
//   --u0 <frac>            through load (overrides --n0)
//   --uc <frac>            cross load (overrides --nc)
//   --epsilon <p>          violation probability       (default 1e-9)
//   --scheduler <name>     fifo | bmux | sp-high | edf (default fifo)
//   --edf-own/--edf-cross  EDF deadline factors        (default 1 / 10)
//   --method <name>        exact | paper-k             (default exact)
//   --additive             also print the additive per-node baseline
//   --simulate <slots>     validate against a simulation of that length
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/analyzer.h"
#include "core/report.h"
#include "core/scenario.h"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "deltanc_cli: %s\n(see the header of tools/deltanc_cli.cpp for flags)\n",
               message.c_str());
  std::exit(2);
}

double parse_double(const char* value, const char* flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    usage_error(std::string("bad numeric value for ") + flag);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deltanc;

  ScenarioBuilder builder;
  e2e::Method method = e2e::Method::kExactOpt;
  bool want_additive = false;
  bool want_report = false;
  long long simulate_slots = 0;
  double edf_own = 1.0, edf_cross = 10.0;
  bool scheduler_is_edf = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value after " + flag);
      return argv[++i];
    };
    if (flag == "--capacity") {
      builder.capacity_mbps(parse_double(next(), "--capacity"));
    } else if (flag == "--hops") {
      builder.hops(static_cast<int>(parse_double(next(), "--hops")));
    } else if (flag == "--n0") {
      builder.through_flows(static_cast<int>(parse_double(next(), "--n0")));
    } else if (flag == "--nc") {
      builder.cross_flows(static_cast<int>(parse_double(next(), "--nc")));
    } else if (flag == "--u0") {
      builder.through_utilization(parse_double(next(), "--u0"));
    } else if (flag == "--uc") {
      builder.cross_utilization(parse_double(next(), "--uc"));
    } else if (flag == "--epsilon") {
      builder.violation_probability(parse_double(next(), "--epsilon"));
    } else if (flag == "--edf-own") {
      edf_own = parse_double(next(), "--edf-own");
    } else if (flag == "--edf-cross") {
      edf_cross = parse_double(next(), "--edf-cross");
    } else if (flag == "--scheduler") {
      const std::string name = next();
      if (name == "fifo") {
        builder.scheduler(e2e::Scheduler::kFifo);
      } else if (name == "bmux") {
        builder.scheduler(e2e::Scheduler::kBmux);
      } else if (name == "sp-high") {
        builder.scheduler(e2e::Scheduler::kSpHigh);
      } else if (name == "edf") {
        builder.scheduler(e2e::Scheduler::kEdf);
        scheduler_is_edf = true;
      } else {
        usage_error("unknown scheduler '" + name + "'");
      }
    } else if (flag == "--method") {
      const std::string name = next();
      if (name == "exact") {
        method = e2e::Method::kExactOpt;
      } else if (name == "paper-k") {
        method = e2e::Method::kPaperK;
      } else {
        usage_error("unknown method '" + name + "'");
      }
    } else if (flag == "--additive") {
      want_additive = true;
    } else if (flag == "--report") {
      want_report = true;
    } else if (flag == "--simulate") {
      simulate_slots =
          static_cast<long long>(parse_double(next(), "--simulate"));
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (scheduler_is_edf) builder.edf_deadlines(edf_own, edf_cross);

  const e2e::Scenario scenario = builder.build();
  if (want_report) {
    ReportOptions options;
    options.simulate_slots = simulate_slots;
    std::printf("%s", render_report(scenario, options).c_str());
    return 0;
  }
  const PathAnalyzer analyzer(scenario);

  std::printf("scenario: C = %.1f Mbps, H = %d, N0 = %d, Nc = %d "
              "(U = %.1f%%), eps = %g\n",
              scenario.capacity, scenario.hops, scenario.n_through,
              scenario.n_cross, 100.0 * scenario.utilization(),
              scenario.epsilon);

  const e2e::BoundResult bound = analyzer.bound(method);
  if (!std::isfinite(bound.delay_ms)) {
    std::printf("bound: unstable configuration (offered load >= capacity)\n");
    return 1;
  }
  std::printf("end-to-end delay bound: %.3f ms  "
              "(gamma = %.4f, s = %.4f, Delta = %g)\n",
              bound.delay_ms, bound.gamma, bound.s, bound.delta);

  if (want_additive) {
    std::printf("additive per-node baseline (BMUX): %.3f ms\n",
                analyzer.additive_bound().delay_ms);
  }
  if (simulate_slots > 0) {
    const ValidationReport r = analyzer.validate(simulate_slots);
    std::printf("simulation (%lld slots): quantile@%.2e = %.2f ms, "
                "max = %.2f ms, bound %s\n",
                simulate_slots, r.epsilon_sim, r.empirical_quantile,
                r.empirical_max, r.bound_holds ? "holds" : "VIOLATED");
    return r.bound_holds ? 0 : 1;
  }
  return 0;
}
