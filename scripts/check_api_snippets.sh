#!/usr/bin/env bash
# Compiles every ```cpp block of docs/API.md, docs/SCHEDULERS.md, and
# docs/SERVING.md as its own translation unit (-fsyntax-only against
# src/), so the documented API surface cannot drift from the headers.
# Registered as the `api_doc_snippets` ctest.
#
# usage: check_api_snippets.sh [compiler] [repo_root]
set -euo pipefail

CXX="${1:-c++}"
ROOT="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
DOCS=("$ROOT/docs/API.md" "$ROOT/docs/SCHEDULERS.md" "$ROOT/docs/SERVING.md")
TMPDIR_SNIPPETS="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SNIPPETS"' EXIT

total=0
failed=0
for DOC in "${DOCS[@]}"; do
  stem="$(basename "$DOC" .md)"
  # Split the fenced cpp blocks into numbered files.
  awk -v dir="$TMPDIR_SNIPPETS" -v stem="$stem" '
    /^```cpp$/ { in_block = 1; ++n; file = dir "/" stem "_" n ".cpp"; next }
    /^```$/    { in_block = 0; next }
    in_block   { print > file }
  ' "$DOC"

  count=0
  for f in "$TMPDIR_SNIPPETS/${stem}"_*.cpp; do
    [ -e "$f" ] || break
    count=$((count + 1))
    if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
         -I "$ROOT/src" -I "$ROOT/include" "$f"; then
      echo "FAIL: $(basename "$f") (from $DOC)" >&2
      failed=$((failed + 1))
    fi
  done
  if [ "$count" -eq 0 ]; then
    echo "check_api_snippets: no cpp blocks found in $DOC" >&2
    exit 1
  fi
  total=$((total + count))
done

if [ "$failed" -gt 0 ]; then
  echo "check_api_snippets: $failed of $total snippets failed" >&2
  exit 1
fi
echo "check_api_snippets: all $total snippets compile"
