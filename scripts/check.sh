#!/usr/bin/env bash
# Full verification: configure, build (warnings-as-errors), run the test
# suite, run every bench binary (several enforce invariants via their exit
# codes), and smoke-test the examples and the CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
  fi
done

for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "===== $e ====="
    "$e" > /dev/null
  fi
done
./build/tools/deltanc_cli --hops 2 > /dev/null
echo "ALL CHECKS PASSED"
