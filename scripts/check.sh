#!/usr/bin/env bash
# Full verification: configure, build (warnings-as-errors), run the test
# suite, re-run it under ThreadSanitizer (the sweep engine is concurrent;
# races must fail loudly), run every bench binary (several enforce
# invariants via their exit codes), and smoke-test the examples and the
# CLI (including the parallel sweep mode).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# --- ThreadSanitizer pass -------------------------------------------------
# Race-checks the concurrency layer (core/thread_pool.h, core/sweep.cpp)
# on every run.  Gated on libtsan being installed; TSAN_OPTIONS makes any
# report fatal so ctest sees the failure.
if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - \
     -o /tmp/deltanc_tsan_probe 2>/dev/null; then
  rm -f /tmp/deltanc_tsan_probe
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure
else
  echo "WARNING: ThreadSanitizer unavailable (no libtsan?); skipping race check" >&2
fi

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
  fi
done

for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "===== $e ====="
    "$e" > /dev/null
  fi
done
./build/tools/deltanc_cli --hops 2 > /dev/null
./build/tools/deltanc_cli --epsilon 1e-6 \
  --sweep uc=0.2:0.6:3 --sweep scheduler=fifo,edf --csv > /dev/null
echo "ALL CHECKS PASSED"
