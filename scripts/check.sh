#!/usr/bin/env bash
# Full verification: configure, build (warnings-as-errors), run the test
# suite, re-run it under ThreadSanitizer (the sweep engine is concurrent;
# races must fail loudly) and under ASan+UBSan (memory and UB bugs in the
# numeric hot path), run every bench binary (several enforce invariants
# via their exit codes), smoke-test the examples and the CLI (including
# the parallel sweep mode and the --selfcheck invariant battery), and
# verify the multi-violation scenario validation.
set -euo pipefail
cd "$(dirname "$0")/.."

# No -G here: an existing build/ reuses its cached generator (the seed
# tree is Unix Makefiles; forcing Ninja onto it is a hard CMake error).
cmake -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

# --- SIMD dispatch gate ---------------------------------------------------
# The Chernoff scan has a vectorized (SoA, omp-simd) and a scalar
# reference path selected at runtime by DELTANC_SIMD.  The run above
# exercised the default (SIMD on); this one forces the scalar path.  The
# suite contains the pinned Fig. 2 hexfloat goldens and the
# scalar-vs-SIMD bit-identity test, so both dispatch modes must produce
# bit-identical bounds or this pass fails.
DELTANC_SIMD=off ctest --test-dir build --output-on-failure

# --- Deprecation-shim gate ------------------------------------------------
# The PR 4 transitional shims (best_delay_bound*, the non-workspace
# optimize_delay/k_procedure_delay wrappers, e2e/deprecation.h) are
# retired: no code directory may spell them again.  docs/ is exempt --
# API.md's migration table documents the removed names on purpose.
shim_hits=$(grep -rn --include='*.cpp' --include='*.h' -E \
  '(^|[^A-Za-z0-9_])(best_delay_bound|DELTANC_DEPRECATED)|deprecation\.h' \
  src tools tests bench examples || true)
if [ -n "$shim_hits" ]; then
  echo "FAIL: retired deprecation shims referenced in code:"
  echo "$shim_hits"; exit 1
fi
echo "deprecation shim gate: OK"

# --- Public-header hygiene ------------------------------------------------
# Every header under include/deltanc/ must compile standalone (no hidden
# include-order dependencies): users are told to include them directly.
for h in include/deltanc/*.h; do
  echo "#include \"${h#include/}\"" | c++ -std=c++20 -fsyntax-only \
    -Wall -Wextra -Werror -I include -I src -x c++ -
done
echo "public-header hygiene: OK"

# --- ThreadSanitizer pass -------------------------------------------------
# Race-checks the concurrency layer (core/thread_pool.h, core/sweep.cpp)
# on every run.  Gated on libtsan being installed; TSAN_OPTIONS makes any
# report fatal so ctest sees the failure.
if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - \
     -o /tmp/deltanc_tsan_probe 2>/dev/null; then
  rm -f /tmp/deltanc_tsan_probe
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure
else
  echo "WARNING: ThreadSanitizer unavailable (no libtsan?); skipping race check" >&2
fi

# --- Address + UndefinedBehavior Sanitizer pass ---------------------------
# Memory- and UB-checks the whole suite (the solver leans on aggressive
# floating-point reasoning; out-of-domain arithmetic must fail loudly).
# Gated on sanitizer availability like the TSan pass above.
if echo 'int main(){return 0;}' | c++ -fsanitize=address,undefined -x c++ - \
     -o /tmp/deltanc_asan_probe 2>/dev/null; then
  rm -f /tmp/deltanc_asan_probe
  cmake -B build-asan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build build-asan
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir build-asan --output-on-failure
else
  echo "WARNING: ASan/UBSan unavailable; skipping memory/UB check" >&2
fi

for b in build/bench/*; do
  # serve_load is a load-generator client, not a self-contained bench:
  # it needs a live --serve socket and exits 2 without one.  It is
  # exercised end-to-end by scripts/check_serve.sh (the serve_e2e test).
  if [ "$(basename "$b")" = "serve_load" ]; then continue; fi
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
  fi
done

for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "===== $e ====="
    "$e" > /dev/null
  fi
done
./build/tools/deltanc_cli --hops 2 > /dev/null
./build/tools/deltanc_cli --epsilon 1e-6 \
  --sweep uc=0.2:0.6:3 --sweep scheduler=fifo,edf --csv > /dev/null

# --- Stream discipline: machine modes keep stdout pure --------------------
# --csv stdout must be nothing but the CSV (header + one row per point);
# --batch / --emit-batch stdout must be nothing but JSONL (each line must
# survive the CLI's own strict linter).
csv_out=$(mktemp)
./build/tools/deltanc_cli --epsilon 1e-6 \
  --sweep uc=0.2:0.6:3 --csv > "$csv_out" 2>/dev/null
if [ "$(wc -l < "$csv_out")" -ne 4 ]; then
  echo "FAIL: --csv stdout not pure CSV (want 1 header + 3 rows):"
  cat "$csv_out"; exit 1
fi
awk -F, 'NR == 1 && NF < 5 { print "FAIL: csv header looks wrong"; exit 1 }' \
  "$csv_out"
rm -f "$csv_out"

emit_out=$(mktemp)
./build/tools/deltanc_cli --epsilon 1e-6 --sweep uc=0.2:0.6:3 \
  --emit-batch > "$emit_out" 2>/dev/null
./build/tools/deltanc_cli --lint-jsonl "$emit_out" 2>/dev/null
batch_out=$(mktemp)
./build/tools/deltanc_cli --batch "$emit_out" > "$batch_out" 2>/dev/null
./build/tools/deltanc_cli --lint-jsonl "$batch_out" 2>/dev/null
rm -f "$emit_out" "$batch_out"
echo "stream discipline: OK"

# --- Scheduler identity gates ---------------------------------------------
# The canonical scheduler name strings are spelled ONLY in the
# sched/scheduler_spec.{h,cpp} registry: any other src/ or tools/ code
# (comments excepted) hard-coding them bypasses the single source of
# truth and will drift from the parser/codec/CLI vocabulary.
name_hits=$(grep -rn --include='*.cpp' --include='*.h' -E '"(fifo|bmux|sp-high|gps|drr|sced)"' \
  src tools include bench examples \
  | grep -v 'sched/scheduler_spec\.' | grep -vE ':[0-9]+: *//' || true)
if [ -n "$name_hits" ]; then
  echo "FAIL: scheduler name literals outside the registry:"
  echo "$name_hits"; exit 1
fi
echo "scheduler name registry gate: OK"

# The continuous Delta axis must pin to the named schedulers at its
# endpoints -- delay(delta=0) bit-identical to the fifo column,
# delay(delta=inf) to bmux -- and the curve must be non-decreasing in
# Delta (more precedence for cross traffic never helps the through
# class).  --warm-start cold: this gate compares CSV delay strings
# byte-for-byte, so both sweeps must run the bit-exact cold path (warm
# chaining is only guaranteed to agree within kWarmStartRelTol).
delta_csv=$(mktemp); sched_csv=$(mktemp)
./build/tools/deltanc_cli --hops 5 --epsilon 1e-6 --warm-start cold \
  --sweep delta=0,1,5,inf --csv > "$delta_csv" 2>/dev/null
./build/tools/deltanc_cli --hops 5 --epsilon 1e-6 --warm-start cold \
  --sweep scheduler=fifo,bmux --csv > "$sched_csv" 2>/dev/null
awk -F, '
  NR == FNR { if (FNR > 1) named[FNR - 2] = $8; next }
  FNR > 1 { d[FNR - 2] = $8; n = FNR - 1 }
  END {
    if (n < 2 || length(named) != 2) { print "FAIL: delta smoke produced no rows"; exit 1 }
    if (d[0] != named[0]) { print "FAIL: delta=0 delay " d[0] " != fifo " named[0]; exit 1 }
    if (d[n - 1] != named[1]) { print "FAIL: delta=inf delay " d[n - 1] " != bmux " named[1]; exit 1 }
    for (i = 1; i < n; ++i) if (d[i] + 0 < d[i - 1] + 0) {
      print "FAIL: delta curve not monotone at step " i; exit 1
    }
  }' "$sched_csv" "$delta_csv"
rm -f "$delta_csv" "$sched_csv"
echo "delta axis endpoint gate: OK"

# --- Batch service + persistent cache guard -------------------------------
# Fig. 2 grid cold vs warm: >= 95% cache hits and >= 5x internal speedup
# on the second run, bit-identical responses (scripts/check_batch.sh).
./scripts/check_batch.sh ./build/tools/deltanc_cli

# Invariant self-check over the full Fig. 2-4 operating grids: scheduler
# ordering, monotonicity in H/U/eps, exact-vs-paper-K agreement,
# finiteness.  Exit code 1 on any violated invariant.
./build/tools/deltanc_cli --selfcheck

# Curve-backed scheduler battery (GPS/DRR/SCED): share/quantum
# monotonicity, GPS(1,1) below the per-hop SP-high analysis, GPS below
# DRR at the same split, sced == gps on symmetric loads, GPS isolation
# (finite bound at total overload while BMUX diverges), and the
# simulation cross-check (slot-level quantiles under the bounds).  Every
# curve-backed spelling must select the battery and exit 0 -- drr and
# sced once had no simulation lowering and threw here.
./build/tools/deltanc_cli --scheduler gps:1,1 --selfcheck
./build/tools/deltanc_cli --scheduler drr:1,1 --selfcheck > /dev/null
./build/tools/deltanc_cli --scheduler sced --selfcheck > /dev/null

# A curve-backed spec must ride the sweep/CSV stack like any other
# scheduler name, including weight lists whose commas overlap the value
# separator (maximal-munch list parsing).
./build/tools/deltanc_cli --hops 5 --epsilon 1e-6 \
  --sweep 'scheduler=fifo,gps:1,1,drr:2,1,sced' --csv > /dev/null

# A deliberately invalid scenario must be rejected with exit code 2 and a
# message naming every bad field (multi-violation validation).
set +e
./build/tools/deltanc_cli --capacity -5 --hops 0 2>/tmp/deltanc_invalid_err
invalid_rc=$?
set -e
if [ "$invalid_rc" -ne 2 ]; then
  echo "FAIL: invalid scenario exited $invalid_rc (want 2)"; exit 1
fi
grep -q "capacity" /tmp/deltanc_invalid_err
grep -q "hops" /tmp/deltanc_invalid_err
rm -f /tmp/deltanc_invalid_err

# Numeric flags use the strict locale-independent grammar: the lenient
# strtod path silently read "--capacity 0x50" as 80 -- it must be a
# usage error (exit 2) now, as must a whitespace-padded weight.
set +e
./build/tools/deltanc_cli --capacity 0x50 2>/dev/null
hex_rc=$?
./build/tools/deltanc_cli --scheduler 'gps: 2,1' 2>/dev/null
ws_rc=$?
set -e
if [ "$hex_rc" -ne 2 ] || [ "$ws_rc" -ne 2 ]; then
  echo "FAIL: lenient numeric parse accepted (hex rc=$hex_rc, ws rc=$ws_rc, want 2)"
  exit 1
fi
echo "strict numeric grammar gate: OK"

# --- Solver instrumentation guards ----------------------------------------
# Smoke the Fig. 2 sweep benchmark against a recorded wall-clock
# baseline: the PR 8 tree measured 212-214 ms/iteration on the 1-core
# CI container; the warm-start + SIMD redesign brought it to 45-47 ms
# (EXPERIMENTS.md "Sweep throughput").  The 130 ms ceiling leaves ~3x
# machine-variance headroom while still tripping on any regression back
# toward the cold-scan cost.  Then re-run the same grid via the CLI
# with --stats and fail on eval-count regressions: a collapse of the
# eb(s) memo (eb_evals creeping toward one per optimizer evaluation), a
# blow-up of the nested search, a diverging EDF fixed point, or the
# warm-chaining / batched-scan machinery silently disabling itself.
sweep_ms=$(./build/bench/perf_micro \
  --benchmark_filter='BM_SweepFig2Grid/1' --benchmark_min_time=0.2 \
  --benchmark_format=json 2>/dev/null \
  | awk '/"real_time"/ { gsub(/[",]/, ""); print $2 + 0; exit }')
echo "BM_SweepFig2Grid/1: ${sweep_ms} ms (baseline ceiling 130 ms)"
awk -v t="$sweep_ms" 'BEGIN {
  if (t + 0 <= 0 || t + 0 > 130) {
    print "FAIL: BM_SweepFig2Grid/1 regressed (" t " ms, ceiling 130 ms)"
    exit 1
  }
}'
stats_line=$(./build/tools/deltanc_cli --hops 5 --epsilon 1e-6 \
  --sweep uc=0.1:0.8:8 --sweep scheduler=fifo,bmux,edf --stats --csv \
  2>&1 >/dev/null | grep '^stats:')
echo "$stats_line"
echo "$stats_line" | awk '{
  for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
  if (v["optimize_evals"] <= 0) {
    print "FAIL: no stats reported"; exit 1
  }
  if (v["eb_evals"] * 10 > v["optimize_evals"]) {
    print "FAIL: eb memoization regressed (eb_evals=" v["eb_evals"] \
          ", optimize_evals=" v["optimize_evals"] ")"; exit 1
  }
  if (v["optimize_evals"] > 1200000) {
    print "FAIL: solver eval count regressed (optimize_evals=" \
          v["optimize_evals"] ", budget 1200000)"; exit 1
  }
  if (v["edf_converged"] != "yes") {
    print "FAIL: EDF fixed point did not converge"; exit 1
  }
  # Warm chaining is the default sweep mode: every non-seed point along a
  # chain should report a warm-start hit (24 points in 3 chains of 8 ->
  # 21), and the batched SoA scan must be doing the coarse-scan work.
  if (v["warm_start_hits"] + 0 < 1) {
    print "FAIL: warm-start chaining inactive (warm_start_hits=" \
          v["warm_start_hits"] ")"; exit 1
  }
  if (v["batched_evals"] + 0 < 1) {
    print "FAIL: batched Chernoff scan inactive (batched_evals=" \
          v["batched_evals"] ")"; exit 1
  }
}'
# --- Delay-profile gates --------------------------------------------------
# The d(eps) profile refactor retired the one-off delay_ccdf_bound
# series helper: Solver::solve_profile is the only spelling of the CCDF
# artifact.  No code directory may reintroduce the old name (docs/ is
# exempt -- the API migration notes mention it on purpose).
ccdf_hits=$(grep -rn --include='*.cpp' --include='*.h' 'delay_ccdf_bound' \
  src tools include tests bench examples || true)
if [ -n "$ccdf_hits" ]; then
  echo "FAIL: retired delay_ccdf_bound referenced in code:"
  echo "$ccdf_hits"; exit 1
fi
echo "delay_ccdf_bound retirement gate: OK"

# Profile CSV is machine output: two identical runs (default warm
# chaining included) must be byte-identical.
prof_a=$(mktemp); prof_b=$(mktemp)
./build/tools/deltanc_cli --sweep hops=2,5 --sweep scheduler=fifo,edf \
  --ccdf 1e-6:1e-3:3 --csv > "$prof_a" 2>/dev/null
./build/tools/deltanc_cli --sweep hops=2,5 --sweep scheduler=fifo,edf \
  --ccdf 1e-6:1e-3:3 --csv > "$prof_b" 2>/dev/null
if ! cmp -s "$prof_a" "$prof_b"; then
  echo "FAIL: --ccdf profile CSV is not deterministic:"
  diff "$prof_a" "$prof_b" | head -5; exit 1
fi
if [ "$(wc -l < "$prof_a")" -ne 13 ]; then
  echo "FAIL: profile CSV row count (want 1 header + 4 points x 3 levels):"
  cat "$prof_a"; exit 1
fi
rm -f "$prof_a" "$prof_b"
echo "profile CSV determinism gate: OK"

# The pinning contract, end to end through the CLI: every level of a
# cold profile must be byte-identical to an independent scalar solve at
# that level's epsilon.  Epsilons ride the %.17g CSV round trip, so
# feeding the printed field back through --epsilon reconstructs the
# exact double; the scalar --csv row shares the profile-CSV shape, so
# the gate is a literal string compare per level.
ccdf_rows=$(mktemp)
./build/tools/deltanc_cli --hops 5 --uc 0.7 --warm-start cold \
  --ccdf 1e-9:1e-3:4 2>/dev/null | tail -n +2 > "$ccdf_rows"
while IFS= read -r row; do
  eps=$(echo "$row" | awk -F, '{ print $7 }')
  scalar_row=$(./build/tools/deltanc_cli --hops 5 --uc 0.7 \
    --epsilon "$eps" --csv 2>/dev/null | tail -n +2)
  if [ "$row" != "$scalar_row" ]; then
    echo "FAIL: cold profile level not pinned to the scalar solve at eps=$eps:"
    echo "  profile: $row"
    echo "  scalar:  $scalar_row"; exit 1
  fi
done < "$ccdf_rows"
rm -f "$ccdf_rows"
echo "profile pinning gate: OK (4 levels byte-identical to scalar solves)"

# Profile requests ride the batch protocol and the persistent cache:
# --emit-batch --ccdf emits profile requests (strict-lint clean), a
# second run answers every one from cache bit-identically (modulo the
# cache-outcome tag), and doctoring every stored entry to wire schema 4
# classifies ALL of them stale -- zero hits, zero wrong answers, full
# re-solve.  (The key-level v4 migration -- kind-less keys probed as
# legacy, never matched as current -- is pinned by the result_cache
# ctest; this smoke covers the payload-schema path end to end.)
prof_dir=$(mktemp -d)
./build/tools/deltanc_cli --hops 3 --sweep uc=0.2:0.6:3 \
  --ccdf 1e-6:1e-3:3 --emit-batch > "$prof_dir/req.jsonl" 2>/dev/null
./build/tools/deltanc_cli --lint-jsonl "$prof_dir/req.jsonl" 2>/dev/null
grep -q '"epsilons":\[' "$prof_dir/req.jsonl" || {
  echo "FAIL: --emit-batch --ccdf did not emit profile requests"; exit 1
}
./build/tools/deltanc_cli --batch "$prof_dir/req.jsonl" \
  --cache-dir "$prof_dir/cache" > "$prof_dir/cold.jsonl" 2>/dev/null
./build/tools/deltanc_cli --lint-jsonl "$prof_dir/cold.jsonl" 2>/dev/null
./build/tools/deltanc_cli --batch "$prof_dir/req.jsonl" \
  --cache-dir "$prof_dir/cache" > "$prof_dir/warm.jsonl" 2> "$prof_dir/warm.err"
grep -q 'hits=3 misses=0 stale=0' "$prof_dir/warm.err" || {
  echo "FAIL: warm profile batch missed the cache:"
  cat "$prof_dir/warm.err"; exit 1
}
strip_cache_tag() {
  sed -e 's/"cache":"[a-z]*",//g' \
      -e 's/"scan_ms":[0-9.eE+-]*,"refine_ms":[0-9.eE+-]*/"t":0/g' \
      -e 's/"cache_hits":[0-9]*,"cache_misses":[0-9]*,"cache_stale":[0-9]*/"c":0/g' \
      "$1"
}
if ! cmp -s <(strip_cache_tag "$prof_dir/cold.jsonl") \
            <(strip_cache_tag "$prof_dir/warm.jsonl"); then
  echo "FAIL: cached profile responses differ from solved ones"; exit 1
fi
find "$prof_dir/cache" -type f -name '*.json' \
  -exec sed -i 's/"schema":5/"schema":4/' {} +
./build/tools/deltanc_cli --batch "$prof_dir/req.jsonl" \
  --cache-dir "$prof_dir/cache" > "$prof_dir/stale.jsonl" 2> "$prof_dir/stale.err"
grep -q 'hits=0 misses=0 stale=3' "$prof_dir/stale.err" || {
  echo "FAIL: schema-4 entries were not all classified stale:"
  cat "$prof_dir/stale.err"; exit 1
}
if ! cmp -s <(strip_cache_tag "$prof_dir/cold.jsonl") \
            <(strip_cache_tag "$prof_dir/stale.jsonl"); then
  echo "FAIL: stale-migration re-solve changed the answers"; exit 1
fi
rm -rf "$prof_dir"
echo "profile batch + schema-migration gate: OK"

# The warm descending-eps chain must actually pay for itself: on a
# 16-level profile it measured 3.8x fewer optimizer evaluations than 16
# cold solves (EXPERIMENTS.md "Profile engine cost"); gate at 3x.  The
# same stderr line must carry live profile counters -- every level
# counted, every post-seed level a chain hit.
cold_stats=$(./build/tools/deltanc_cli --hops 5 --n0 100 --nc 236 \
  --ccdf 1e-9:1e-3:16 --warm-start cold --stats 2>&1 >/dev/null \
  | grep '^stats:')
warm_stats=$(./build/tools/deltanc_cli --hops 5 --n0 100 --nc 236 \
  --ccdf 1e-9:1e-3:16 --warm-start warm --stats 2>&1 >/dev/null \
  | grep '^stats:')
echo "profile cold: $cold_stats"
echo "profile warm: $warm_stats"
awk -v cold="$cold_stats" -v warm="$warm_stats" 'BEGIN {
  split(cold, cf, " "); for (i in cf) { split(cf[i], kv, "="); c[kv[1]] = kv[2] }
  split(warm, wf, " "); for (i in wf) { split(wf[i], kv, "="); w[kv[1]] = kv[2] }
  if (c["profile_levels"] + 0 != 16 || w["profile_levels"] + 0 != 16) {
    print "FAIL: profile_levels counter not live (cold=" c["profile_levels"] \
          ", warm=" w["profile_levels"] ")"; exit 1
  }
  if (c["profile_chain_hits"] + 0 != 0) {
    print "FAIL: cold profile reported chain hits (" c["profile_chain_hits"] ")"
    exit 1
  }
  if (w["profile_chain_hits"] + 0 != 15) {
    print "FAIL: warm chain hits " w["profile_chain_hits"] " (want 15/15)"
    exit 1
  }
  ratio = (c["optimize_evals"] + 0) / (w["optimize_evals"] + 1e-9)
  if (ratio < 3) {
    printf "FAIL: warm profile only %.2fx cheaper than cold (want >= 3x)\n", ratio
    exit 1
  }
  printf "profile warm-chain gate: OK (%.2fx fewer optimizer evals, 15/15 chain hits)\n", ratio
}'

echo "ALL CHECKS PASSED"
