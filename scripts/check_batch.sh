#!/usr/bin/env bash
# End-to-end guard for the batch service + persistent result cache:
# emit the Fig. 2 sweep grid as a JSONL request file, run it cold and
# then warm against a fresh cache directory, and assert
#   * both stdouts are pure JSONL (every line parses via --lint-jsonl),
#   * the warm run answers >= 95% of requests from the cache,
#   * the warm run's internal wall clock is >= 5x faster than the cold
#     one (internal wall_ms, so process startup does not blur the ratio),
#   * cold and warm responses are byte-identical apart from the cache
#     outcome tag (bit-exact result round-trip through the cache).
# Registered as the `batch_e2e` ctest.
#
# usage: check_batch.sh [deltanc_cli]
set -euo pipefail

CLI="${1:-$(cd "$(dirname "$0")/.." && pwd)/build/tools/deltanc_cli}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# The Fig. 2 operating grid (hops 5, eps 1e-6, Uc x scheduler).
"$CLI" --hops 5 --epsilon 1e-6 \
  --sweep uc=0.1:0.8:8 --sweep scheduler=fifo,bmux,edf \
  --emit-batch > "$WORK/requests.jsonl" 2>/dev/null
requests=$(wc -l < "$WORK/requests.jsonl")
if [ "$requests" -lt 24 ]; then
  echo "FAIL: emit-batch produced $requests requests (want 24)"; exit 1
fi
"$CLI" --lint-jsonl "$WORK/requests.jsonl" 2>/dev/null

cold_err="$WORK/cold.err"
warm_err="$WORK/warm.err"
"$CLI" --batch "$WORK/requests.jsonl" --cache-dir "$WORK/cache" \
  > "$WORK/cold.jsonl" 2> "$cold_err"
"$CLI" --batch "$WORK/requests.jsonl" --cache-dir "$WORK/cache" \
  > "$WORK/warm.jsonl" 2> "$warm_err"

# stdout purity: every response line must survive the strict linter.
"$CLI" --lint-jsonl "$WORK/cold.jsonl" 2>/dev/null
"$CLI" --lint-jsonl "$WORK/warm.jsonl" 2>/dev/null

summary_field() {  # summary_field <file> <key>
  grep '^batch:' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

cold_ms=$(summary_field "$cold_err" wall_ms)
warm_ms=$(summary_field "$warm_err" wall_ms)
warm_cached=$(summary_field "$warm_err" cached)

awk -v req="$requests" -v cached="$warm_cached" \
    -v cold="$cold_ms" -v warm="$warm_ms" 'BEGIN {
  if (cached < 0.95 * req) {
    printf "FAIL: warm run cached %d/%d (< 95%%)\n", cached, req; exit 1
  }
  if (warm * 5 > cold) {
    printf "FAIL: warm run %.3f ms vs cold %.3f ms (< 5x speedup)\n",
           warm, cold; exit 1
  }
  printf "batch_e2e: %d/%d cached, %.1fx speedup (%.1f ms -> %.2f ms)\n",
         cached, req, cold / warm, cold, warm
}'

# Results served from the cache must be bit-identical to the solved
# ones: strip the per-response cache outcome (the "cache" tag and the
# stats cache counters -- those describe how the answer was obtained,
# not the answer), then byte-compare.
strip_outcome() {
  sed -e 's/"cache":"[a-z]*",//' \
      -e 's/"cache_hits":[0-9]*,"cache_misses":[0-9]*,"cache_stale":[0-9]*/"cache_outcome":"x"/' \
      "$1"
}
strip_outcome "$WORK/cold.jsonl" > "$WORK/cold.stripped"
strip_outcome "$WORK/warm.jsonl" > "$WORK/warm.stripped"
if ! cmp -s "$WORK/cold.stripped" "$WORK/warm.stripped"; then
  echo "FAIL: warm responses differ from cold ones beyond the cache tag"
  exit 1
fi
echo "batch_e2e: cold/warm responses bit-identical"
