#!/usr/bin/env bash
# End-to-end guard for the persistent solve service (`deltanc_cli
# --serve`).  Two phases:
#
#  1. Fault phase: warm a cache with one-shot --batch, corrupt one
#     entry on disk, then boot the server on a copy of that cache under
#     a deterministic fault plan (worker crash on its 2nd request +
#     2 s delay on the last id with a 400 ms deadline).  Replay the
#     same requests through serve_load and assert
#       * every request is answered exactly once,
#       * the delayed request gets a classified kind=timeout error,
#       * every surviving response is bit-identical to the one-shot
#         --batch run on the twin cache (modulo the cache-outcome tag,
#         cache counters, and solve timings -- how the answer was
#         obtained, not the answer),
#       * SIGHUP reloads the warm layer, SIGTERM drains with rc 0,
#       * the stderr narration shows the injected faults were hit
#         (timeout, worker loss, requeue, respawn, corrupt recovery).
#
#  2. Load phase: a clean server, >= 100k mixed cold/warm requests via
#     serve_load (plus the truncated-final-line probe), asserting warm
#     throughput >= 5x cold and a clean drain.
#
# Registered as the `serve_e2e` ctest.
#
# usage: check_serve.sh [deltanc_cli] [serve_load]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="${1:-$ROOT/build/tools/deltanc_cli}"
LOAD="${2:-$ROOT/build/bench/serve_load}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_socket() {  # wait_for_socket <path>
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "FAIL: server never bound $1"; exit 1
}

sort_by_id() {  # sort_by_id <file> -- stable numeric sort on the id field
  awk 'match($0, /"id":[0-9]+/) {
         print substr($0, RSTART + 5, RLENGTH - 5) "\t" $0
       }' "$1" | sort -n | cut -f2-
}

# Strip everything that describes how an answer was obtained rather
# than the answer itself: the cache outcome tag, the cache counters,
# and the (nondeterministic) solve timings.  /g: a profile response
# carries one stats block per level plus the aggregate, so every
# occurrence on the line must be normalized, not just the first.
strip_outcome() {
  sed -e 's/"cache":"[a-z]*",//g' \
      -e 's/"scan_ms":[0-9.eE+-]*,"refine_ms":[0-9.eE+-]*/"timings":"x"/g' \
      -e 's/"cache_hits":[0-9]*,"cache_misses":[0-9]*,"cache_stale":[0-9]*/"cache_outcome":"x"/g' \
      "$1"
}

# ---------------------------------------------------------------- phase 1
# The Fig. 2-style operating grid, hops 3 (24 requests, ids 0..23).
"$CLI" --hops 3 --epsilon 1e-6 \
  --sweep uc=0.1:0.8:8 --sweep scheduler=fifo,bmux,edf \
  --emit-batch > "$WORK/requests.jsonl" 2>/dev/null
requests=$(wc -l < "$WORK/requests.jsonl")
if [ "$requests" -ne 24 ]; then
  echo "FAIL: emit-batch produced $requests requests (want 24)"; exit 1
fi
timeout_id=23

# Warm a cache, corrupt one entry, and twin the directory so server and
# golden batch run see the same disk state.
"$CLI" --batch "$WORK/requests.jsonl" --cache-dir "$WORK/cache" \
  > /dev/null 2> /dev/null
victim=$(find "$WORK/cache" -type f -name '*.json' | sort | head -1)
if [ -z "$victim" ]; then
  echo "FAIL: cold batch run left no cache entries to corrupt"; exit 1
fi
printf 'NOT JSON {{{' > "$victim"
cp -a "$WORK/cache" "$WORK/cache_golden"

golden_rc=0
"$CLI" --batch "$WORK/requests.jsonl" --cache-dir "$WORK/cache_golden" \
  > "$WORK/golden.jsonl" 2> "$WORK/golden.err" || golden_rc=$?
if [ "$golden_rc" -ne 3 ]; then
  echo "FAIL: golden batch run rc=$golden_rc (want 3: corrupt recovery)"
  exit 1
fi

SOCK="$WORK/serve.sock"
"$CLI" --serve "$SOCK" --serve-workers 2 --cache-dir "$WORK/cache" \
  --deadline-ms 400 --fault-plan "kill:0:2;delay:${timeout_id}:2000" \
  2> "$WORK/serve.err" &
SERVER_PID=$!
wait_for_socket "$SOCK"

load_rc=0
"$LOAD" --socket "$SOCK" --input "$WORK/requests.jsonl" \
  --output "$WORK/serve.jsonl" --window 8 \
  > "$WORK/replay.out" 2>&1 || load_rc=$?
# rc 3 == every request answered, some with classified errors (the
# injected timeout).  Anything else is a real failure.
if [ "$load_rc" -ne 3 ]; then
  echo "FAIL: replay serve_load rc=$load_rc (want 3: classified errors only)"
  cat "$WORK/replay.out"; exit 1
fi
grep -q "requests=$requests answered=$requests " "$WORK/replay.out" || {
  echo "FAIL: not every request was answered exactly once:"
  cat "$WORK/replay.out"; exit 1
}

# SIGHUP drops the warm layer and reopens the caches.
kill -HUP "$SERVER_PID"
for _ in $(seq 1 50); do
  grep -q "serve: reloaded" "$WORK/serve.err" && break
  sleep 0.1
done
grep -q "serve: reloaded" "$WORK/serve.err" || {
  echo "FAIL: SIGHUP did not trigger a cache reload"; exit 1
}

# Clean drain on SIGTERM (the parked zombie from the delayed request
# makes this wait out the remaining injected delay -- still rc 0).
kill -TERM "$SERVER_PID"
server_rc=0
wait "$SERVER_PID" || server_rc=$?
SERVER_PID=""
if [ "$server_rc" -ne 0 ]; then
  echo "FAIL: server exit rc=$server_rc (want 0: clean drain)"
  cat "$WORK/serve.err"; exit 1
fi

# The delayed request must carry a classified timeout, not a silent
# drop or an unclassified error.
sort_by_id "$WORK/serve.jsonl" > "$WORK/serve.sorted"
timeout_line=$(awk -v id="\"id\":$timeout_id," 'index($0, id)' \
  "$WORK/serve.sorted")
case "$timeout_line" in
  *'"ok":false'*'"kind":"timeout"'*) ;;
  *) echo "FAIL: id $timeout_id response is not a classified timeout:"
     echo "  $timeout_line"; exit 1 ;;
esac

# Every surviving response is bit-identical to the one-shot batch run.
sort_by_id "$WORK/golden.jsonl" > "$WORK/golden.sorted"
exclude_timeout() {
  awk -v id="\"id\":$timeout_id," '!index($0, id)' "$1"
}
exclude_timeout "$WORK/serve.sorted" > "$WORK/serve.survivors"
exclude_timeout "$WORK/golden.sorted" > "$WORK/golden.survivors"
strip_outcome "$WORK/serve.survivors" > "$WORK/serve.stripped"
strip_outcome "$WORK/golden.survivors" > "$WORK/golden.stripped"
if ! cmp -s "$WORK/serve.stripped" "$WORK/golden.stripped"; then
  echo "FAIL: serve responses differ from one-shot --batch:"
  diff "$WORK/golden.stripped" "$WORK/serve.stripped" | head -10
  exit 1
fi
echo "serve_e2e: $((requests - 1)) surviving responses bit-identical to --batch"

# The narration must show every injected fault was actually exercised.
stat_field() {  # stat_field <prefix> <key>
  grep "^$1" "$WORK/serve.err" | tr ' ' '\n' | sed -n "s/^$2=//p" | head -1
}
timeouts=$(stat_field "serve: timeouts" timeouts)
losses=$(stat_field "serve: timeouts" worker_losses)
requeues=$(stat_field "serve: timeouts" requeues)
respawns=$(stat_field "serve: timeouts" respawns)
corrupt=$(stat_field "cache: dir" corrupt)
awk -v t="$timeouts" -v l="$losses" -v q="$requeues" -v r="$respawns" \
    -v c="$corrupt" 'BEGIN {
  if (t != 1)  { printf "FAIL: timeouts=%d (want 1)\n", t; exit 1 }
  if (l < 1)   { printf "FAIL: worker_losses=%d (want >= 1)\n", l; exit 1 }
  if (q < 1)   { printf "FAIL: requeues=%d (want >= 1)\n", q; exit 1 }
  if (r < 1)   { printf "FAIL: respawns=%d (want >= 1)\n", r; exit 1 }
  if (c < 1)   { printf "FAIL: corrupt=%d (want >= 1)\n", c; exit 1 }
  printf "serve_e2e: faults exercised (timeouts=%d losses=%d requeues=%d respawns=%d corrupt=%d)\n",
         t, l, q, r, c
}'

# ---------------------------------------------------------------- phase 2
SOCK2="$WORK/load.sock"
"$CLI" --serve "$SOCK2" --serve-workers 4 --cache-dir "$WORK/load_cache" \
  2> "$WORK/load_serve.err" &
SERVER_PID=$!
wait_for_socket "$SOCK2"

# A second instance must refuse to steal the live server's socket (it
# probes with a connect before unlinking); the incumbent keeps serving.
second_rc=0
"$CLI" --serve "$SOCK2" --serve-workers 1 2> "$WORK/second.err" \
  || second_rc=$?
if [ "$second_rc" -eq 0 ]; then
  echo "FAIL: second --serve instance on a live socket exited rc 0"; exit 1
fi
grep -q "refusing to replace" "$WORK/second.err" || {
  echo "FAIL: second instance did not refuse the live socket:"
  cat "$WORK/second.err"; exit 1
}
echo "serve_e2e: second instance refused the live socket (rc=$second_rc)"

# --hangup-probe: a connection that dies without reading its responses
# must not wedge the drain below (the historical failure mode: EPIPE in
# the response writer leaked the outstanding count and SIGTERM hung).
bench_rc=0
"$LOAD" --socket "$SOCK2" --requests 100000 --unique 64 --window 64 \
  --truncate-probe --hangup-probe > "$WORK/load.out" 2>&1 || bench_rc=$?
if [ "$bench_rc" -ne 0 ]; then
  echo "FAIL: load bench rc=$bench_rc:"; cat "$WORK/load.out"; exit 1
fi
cat "$WORK/load.out"

ratio=$(grep -o 'warm_cold_ratio=[0-9.]*' "$WORK/load.out" | cut -d= -f2)
awk -v ratio="${ratio:-0}" 'BEGIN {
  if (ratio < 5) {
    printf "FAIL: warm/cold throughput ratio %.1f (want >= 5)\n", ratio
    exit 1
  }
  printf "serve_e2e: warm throughput %.1fx cold\n", ratio
}'

kill -TERM "$SERVER_PID"
server_rc=0
wait "$SERVER_PID" || server_rc=$?
SERVER_PID=""
if [ "$server_rc" -ne 0 ]; then
  echo "FAIL: load server exit rc=$server_rc (want 0: clean drain)"
  cat "$WORK/load_serve.err"; exit 1
fi
echo "serve_e2e: clean SIGTERM drains on both servers"
