// Long-path study: the paper's title question, as a runnable experiment.
//
// Sweeps the path length H at fixed 50% utilization and prints the
// end-to-end delay bound of each scheduler, the FIFO/BMUX ratio (how
// quickly FIFO degenerates to blind multiplexing), and the EDF/BMUX
// ratio (the scheduling gain that survives on long paths).  The 8 x 4
// grid runs on the parallel sweep engine (all cores; DELTANC_THREADS
// overrides) with a progress line while it solves.
//
// Build & run:  ./build/examples/long_path_study
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/scenario.h"
#include "core/sweep.h"
#include "core/table.h"

int main() {
  using namespace deltanc;

  const std::vector<int> hops_values = {1, 2, 3, 5, 8, 12, 16, 24};
  const std::vector<sched::SchedulerKind> scheds = {
      sched::SchedulerKind::kSpHigh, sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo,
      sched::SchedulerKind::kBmux};

  SweepGrid grid(ScenarioBuilder()
                     .through_utilization(0.25)
                     .cross_utilization(0.25)
                     .build());
  grid.hops_axis(hops_values).scheduler_axis(scheds);

  SweepOptions opts;
  opts.progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\rsolving %zu/%zu", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };
  const SweepReport report = SweepRunner(opts).run(grid);

  Table table({"H", "SP-high [ms]", "EDF [ms]", "FIFO [ms]", "BMUX [ms]",
               "FIFO/BMUX", "EDF/BMUX"});
  for (std::size_t hi = 0; hi < hops_values.size(); ++hi) {
    const auto delay = [&](std::size_t si) {
      return report.points[hi * scheds.size() + si].bound.delay_ms;
    };
    const double sp = delay(0), edf = delay(1), fifo = delay(2),
                 bmux = delay(3);
    table.add_row(std::to_string(hops_values[hi]),
                  {sp, edf, fifo, bmux, fifo / bmux, edf / bmux});
  }

  std::printf("End-to-end delay bounds vs path length "
              "(U = 50%%, N0 = Nc, eps = 1e-9)\n");
  std::printf("(%zu scenarios solved in %.0f ms on %d thread(s))\n\n",
              report.points.size(), report.wall_ms, report.threads);
  table.print(std::cout);
  std::printf(
      "\nReading the ratios: FIFO/BMUX -> 1 quickly (by H ~ 5 the FIFO\n"
      "analysis buys nothing over scheduler-blind multiplexing), while\n"
      "EDF/BMUX stays well below 1 -- deadline-based scheduling keeps\n"
      "providing delay differentiation no matter how long the path is.\n");
  return 0;
}
