// Long-path study: the paper's title question, as a runnable experiment.
//
// Sweeps the path length H at fixed 50% utilization and prints the
// end-to-end delay bound of each scheduler, the FIFO/BMUX ratio (how
// quickly FIFO degenerates to blind multiplexing), and the EDF/BMUX
// ratio (the scheduling gain that survives on long paths).
//
// Build & run:  ./build/examples/long_path_study
#include <cstdio>
#include <iostream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"

int main() {
  using namespace deltanc;

  Table table({"H", "SP-high [ms]", "EDF [ms]", "FIFO [ms]", "BMUX [ms]",
               "FIFO/BMUX", "EDF/BMUX"});

  for (int hops : {1, 2, 3, 5, 8, 12, 16, 24}) {
    const auto with_sched = [&](e2e::Scheduler s) {
      return PathAnalyzer(ScenarioBuilder()
                              .hops(hops)
                              .through_utilization(0.25)
                              .cross_utilization(0.25)
                              .scheduler(s)
                              .build())
          .bound()
          .delay_ms;
    };
    const double sp = with_sched(e2e::Scheduler::kSpHigh);
    const double edf = with_sched(e2e::Scheduler::kEdf);
    const double fifo = with_sched(e2e::Scheduler::kFifo);
    const double bmux = with_sched(e2e::Scheduler::kBmux);
    table.add_row(std::to_string(hops),
                  {sp, edf, fifo, bmux, fifo / bmux, edf / bmux});
  }

  std::printf("End-to-end delay bounds vs path length "
              "(U = 50%%, N0 = Nc, eps = 1e-9)\n\n");
  table.print(std::cout);
  std::printf(
      "\nReading the ratios: FIFO/BMUX -> 1 quickly (by H ~ 5 the FIFO\n"
      "analysis buys nothing over scheduler-blind multiplexing), while\n"
      "EDF/BMUX stays well below 1 -- deadline-based scheduling keeps\n"
      "providing delay differentiation no matter how long the path is.\n");
  return 0;
}
