// Bound validation: run the slot-level tandem simulator with the actual
// scheduling algorithms and check that the analytic end-to-end bounds
// dominate the empirical delay quantiles at the same violation level.
//
// Build & run:  ./build/examples/sim_vs_bound
#include <cstdio>
#include <iostream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"
#include "e2e/solver.h"

int main() {
  using namespace deltanc;

  constexpr std::int64_t kSlots = 400000;  // 400 s of simulated time
  Table table({"scheduler", "bound@eps_sim [ms]", "sim quantile [ms]",
               "sim max [ms]", "samples", "holds"});

  const struct {
    const char* name;
    sched::SchedulerKind sched;
  } cases[] = {{"FIFO", sched::SchedulerKind::kFifo},
               {"BMUX (SP low)", sched::SchedulerKind::kBmux},
               {"SP high", sched::SchedulerKind::kSpHigh},
               {"EDF d*c=10d*0", sched::SchedulerKind::kEdf}};

  std::printf("Tandem: H = 3, N0 = Nc = 250 (U ~ 75%%), C = 100 Mbps, "
              "%lld slots\n\n",
              static_cast<long long>(kSlots));

  for (const auto& c : cases) {
    const PathAnalyzer analyzer(ScenarioBuilder()
                                    .hops(3)
                                    .through_flows(250)
                                    .cross_flows(250)
                                    .scheduler(c.sched)
                                    .build());
    const ValidationReport r = analyzer.validate(kSlots, 2024);
    // Re-derive the bound at the simulation's epsilon for the table.
    e2e::Scenario at_eps = analyzer.scenario();
    at_eps.epsilon = r.epsilon_sim;
    const double bound_ms = deltanc::Solver().solve(at_eps).delay_ms;
    table.add_row({c.name, Table::format(bound_ms),
                   Table::format(r.empirical_quantile),
                   Table::format(r.empirical_max),
                   std::to_string(r.samples), r.bound_holds ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf(
      "\nThe analytic bounds hold with margin: they are worst-case-style\n"
      "guarantees over all arrival correlations the EBB model admits,\n"
      "while the simulation samples one (friendly) trajectory set.\n");
  return 0;
}
