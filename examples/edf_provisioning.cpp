// Admission control / provisioning with the single-node machinery:
//
//  1. Deterministic schedulability (Theorem 2): given leaky-bucket
//     contracts, check whether a set of flows meets its deadlines under
//     FIFO / SP / EDF on one link -- the tight condition Eq. (24).
//  2. Capacity planning on a path: find the largest cross load a 6-hop
//     EDF path can admit while keeping the through flow's probabilistic
//     delay bound under a 100 ms budget.
//
// Build & run:  ./build/examples/edf_provisioning
#include <cstdio>
#include <vector>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "sched/delta.h"
#include "sched/schedulability.h"

namespace {

void deterministic_admission() {
  using namespace deltanc;
  std::printf("--- Deterministic single-node admission (Eq. 24) ---\n");
  // Three leaky-bucket flows on a 100 Mbps link: a 20 Mbps video flow
  // with a 4 Mb burst, a 30 Mbps data flow with a 10 Mb burst, and a
  // 10 Mbps control flow with a 0.5 Mb burst.  (kb and ms units.)
  const std::vector<nc::Curve> envelopes{
      nc::Curve::leaky_bucket(20.0, 4000.0),
      nc::Curve::leaky_bucket(30.0, 10000.0),
      nc::Curve::leaky_bucket(10.0, 500.0)};
  const double capacity = 100.0;

  const auto report = [&](const char* name, const sched::DeltaMatrix& d) {
    std::printf("  %-28s", name);
    for (std::size_t flow = 0; flow < envelopes.size(); ++flow) {
      std::printf("  flow%zu: %8.1f ms", flow,
                  sched::min_delay_bound(capacity, d, envelopes, flow));
    }
    std::printf("\n");
  };
  report("FIFO", sched::DeltaMatrix::fifo(3));
  report("SP (control highest)",
         sched::DeltaMatrix::static_priority(std::vector<int>{1, 0, 2}));
  // EDF deadlines: video 60 ms, data 400 ms, control 20 ms.
  report("EDF (60/400/20 ms)",
         sched::DeltaMatrix::edf(std::vector<double>{60.0, 400.0, 20.0}));
  std::printf(
      "  EDF meets the tight per-flow targets FIFO cannot differentiate;\n"
      "  by Theorem 2 these numbers are exact worst-case delays.\n\n");
}

void path_capacity_planning() {
  using namespace deltanc;
  std::printf("--- Probabilistic capacity planning on a 6-hop EDF path ---\n");
  const double budget_ms = 100.0;
  // Binary search the admissible cross utilization.
  double lo = 0.0, hi = 0.8;
  for (int iter = 0; iter < 12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double bound =
        PathAnalyzer(ScenarioBuilder()
                         .hops(6)
                         .through_utilization(0.15)
                         .cross_utilization(mid)
                         .scheduler(sched::SchedulerKind::kEdf)
                         .edf_deadlines(1.0, 10.0)
                         .build())
            .bound()
            .delay_ms;
    std::printf("  cross load %4.1f%% -> EDF bound %8.2f ms (%s)\n",
                100.0 * mid, bound,
                bound <= budget_ms ? "admit" : "reject");
    (bound <= budget_ms ? lo : hi) = mid;
  }
  std::printf("  => largest admissible cross utilization: ~%.1f%% while "
              "guaranteeing P(W > %.0f ms) <= 1e-9\n",
              100.0 * lo, budget_ms);
}

}  // namespace

int main() {
  deterministic_admission();
  path_capacity_planning();
  return 0;
}
