// Quickstart: compute a probabilistic end-to-end delay bound for a flow
// crossing a 5-hop path of 100 Mbps FIFO links, shared with Markov
// modulated on-off cross traffic -- the paper's Section-V setting.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/analyzer.h"
#include "core/scenario.h"

int main() {
  using namespace deltanc;

  // 100 through flows (~15% load) and ~35% cross load at each of 5 nodes;
  // delay bound violated with probability at most 1e-9.
  const e2e::Scenario scenario = ScenarioBuilder()
                                     .capacity_mbps(100.0)
                                     .hops(5)
                                     .through_utilization(0.15)
                                     .cross_utilization(0.35)
                                     .violation_probability(1e-9)
                                     .scheduler(sched::SchedulerKind::kFifo)
                                     .build();

  const PathAnalyzer analyzer(scenario);
  const e2e::BoundResult fifo = analyzer.bound();

  std::printf("Scenario: H = %d hops, N0 = %d through flows, Nc = %d cross "
              "flows/node, U = %.0f%%\n",
              scenario.hops, scenario.n_through, scenario.n_cross,
              100.0 * scenario.utilization());
  std::printf("FIFO end-to-end delay bound:   %.2f ms  "
              "(P(W > bound) <= %g)\n",
              fifo.delay_ms, scenario.epsilon);
  std::printf("  optimizing parameters: gamma = %.4f Mbps/node, Chernoff "
              "s = %.4f\n",
              fifo.gamma, fifo.s);

  // How much of that is the scheduler?  Compare against the
  // scheduler-agnostic blind-multiplexing bound and against EDF with a
  // 10x looser deadline for the cross traffic.
  e2e::Scenario bm = scenario;
  bm.scheduler = sched::SchedulerKind::kBmux;
  e2e::Scenario edf = scenario;
  edf.scheduler = sched::SchedulerKind::kEdf;  // d*_c = 10 d*_0, the paper's pick
  std::printf("BMUX (scheduler-agnostic) bound: %.2f ms\n",
              PathAnalyzer(bm).bound().delay_ms);
  std::printf("EDF  (d*_c = 10 d*_0) bound:     %.2f ms\n",
              PathAnalyzer(edf).bound().delay_ms);
  std::printf("\nOn this 5-hop path the FIFO bound already sits near BMUX, "
              "while EDF keeps a clear advantage --\nthe paper's answer to "
              "\"does link scheduling matter on long paths?\" is yes.\n");
  return 0;
}
