// Heterogeneous path analysis (the closing remark of Section IV): each
// node may have a different link rate, a different cross load, and even a
// different scheduler.  The example answers a deployment question: on a
// path with one congested 50 Mbps bottleneck, where does upgrading the
// scheduler from FIFO to deadline-based EDF actually help?
//
// Build & run:  ./build/examples/heterogeneous_path
#include <cstdio>
#include <limits>
#include <iostream>

#include "core/table.h"
#include "e2e/heterogeneous.h"
#include "traffic/mmoo.h"

int main() {
  using namespace deltanc;
  using namespace deltanc::e2e;

  const auto src = traffic::MmooSource::paper_source();
  const double s = 0.01;  // Chernoff parameter (kept stable at the bottleneck)
  const double eb = src.effective_bandwidth(s);

  // 5-hop path: fast edge links, one 50 Mbps bottleneck at hop 3.
  const auto make_path = [&](double delta_everywhere,
                             double delta_bottleneck) {
    HeteroPath p;
    p.rho = 100 * eb;  // 100 through flows
    p.alpha = s;
    p.m = 1.0;
    for (int h = 0; h < 5; ++h) {
      const bool bottleneck = (h == 2);
      NodeParams node;
      node.capacity = bottleneck ? 50.0 : 100.0;
      node.rho_cross = (bottleneck ? 120 : 150) * eb;
      node.m_cross = 1.0;
      node.delta = bottleneck ? delta_bottleneck : delta_everywhere;
      p.nodes.push_back(node);
    }
    return p;
  };

  constexpr double kEps = 1e-9;
  const double inf = std::numeric_limits<double>::infinity();

  Table table({"configuration", "bound [ms]"});
  const double all_fifo = hetero_best_delay_bound(make_path(0.0, 0.0), kEps);
  table.add_row({"FIFO everywhere", Table::format(all_fifo)});
  const double edf_bottleneck =
      hetero_best_delay_bound(make_path(0.0, -40.0), kEps);
  table.add_row({"FIFO + EDF at the bottleneck only",
                 Table::format(edf_bottleneck)});
  const double edf_everywhere =
      hetero_best_delay_bound(make_path(-40.0, -40.0), kEps);
  table.add_row({"EDF everywhere", Table::format(edf_everywhere)});
  const double bmux = hetero_best_delay_bound(make_path(inf, inf), kEps);
  table.add_row({"blind multiplexing (reference)", Table::format(bmux)});

  std::printf("Through flow: 100 MMOO flows over 5 hops; hop 3 is a "
              "50 Mbps bottleneck (eps = 1e-9)\n\n");
  table.print(std::cout);
  std::printf(
      "\nUpgrading only the bottleneck captures %.0f%% of the gain of\n"
      "upgrading every node: on heterogeneous paths the scheduler choice\n"
      "matters exactly where the queueing happens.\n",
      100.0 * (all_fifo - edf_bottleneck) /
          std::max(1e-9, all_fifo - edf_everywhere));
  return 0;
}
