// Beyond on-off: a 3-state VBR video model (idle / active / burst)
// pushed through the paper's end-to-end analysis.  The EBB machinery only
// needs an effective-bandwidth bound, so any finite Markov-modulated
// source works -- this example provisions a video aggregate across a
// 4-hop path and compares FIFO with an EDF configuration that protects
// the video's deadline.
//
// Build & run:  ./build/examples/vbr_video
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "core/table.h"
#include "e2e/delay_bound.h"
#include "e2e/network_epsilon.h"
#include "e2e/solver.h"
#include "traffic/markov.h"

int main() {
  using namespace deltanc;
  using namespace deltanc::e2e;

  // 3-state video: idle (0), active (2 kb/ms), burst (8 kb/ms); sticky
  // transitions give long scenes and occasional bursts.
  const traffic::MarkovSource video({{0.95, 0.05, 0.00},
                                     {0.02, 0.90, 0.08},
                                     {0.00, 0.30, 0.70}},
                                    {0.0, 2.0, 8.0});
  std::printf("VBR video source: mean %.2f Mbps, peak %.1f Mbps\n",
              video.mean_rate(), video.peak_rate());

  constexpr int kVideos = 15;      // through aggregate
  constexpr int kCrossVideos = 15; // per node
  constexpr int kHops = 4;
  constexpr double kCapacity = 100.0;
  constexpr double kEps = 1e-9;

  Table table({"scheduler", "bound [ms]", "best s", "best gamma"});
  for (double delta : {0.0, std::numeric_limits<double>::infinity(), -30.0}) {
    // Optimize the Chernoff parameter and gamma by scanning (the video
    // source is not an MmooSource, so we drive PathParams directly).
    double best = std::numeric_limits<double>::infinity();
    double best_s = 0.0, best_gamma = 0.0;
    for (double s = 0.005; s <= 2.0; s *= 1.25) {
      const double rho = kVideos * video.effective_bandwidth(s);
      const double rho_c = kCrossVideos * video.effective_bandwidth(s);
      if (rho + rho_c >= kCapacity) continue;
      const PathParams p{kCapacity, kHops, rho, rho_c, s, 1.0, delta};
      const double glim = p.gamma_limit();
      for (int i = 1; i <= 32; ++i) {
        const double gamma = glim * i / 33.0;
        const double sigma = sigma_for_epsilon(p, gamma, kEps);
        const double d = deltanc::Solver().optimize(p, gamma, sigma).delay;
        if (d < best) {
          best = d;
          best_s = s;
          best_gamma = gamma;
        }
      }
    }
    const char* name = delta == 0.0              ? "FIFO"
                       : std::isfinite(delta)    ? "EDF (video favoured)"
                                                 : "BMUX";
    table.add_row({name, Table::format(best), Table::format(best_s, 4),
                   Table::format(best_gamma, 4)});
  }
  std::printf("\n%d video flows across %d hops, %d cross videos per node "
              "(C = %.0f Mbps, eps = %g):\n\n",
              kVideos, kHops, kCrossVideos, kCapacity, kEps);
  table.print(std::cout);
  std::printf("\nThe same Section-IV machinery covers any finite Markov\n"
              "source; only the effective-bandwidth curve changes.\n");
  return 0;
}
