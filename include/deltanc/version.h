// Library version, as macros (preprocessor-testable by downstream code)
// and as constexpr accessors.  The version participates in the persistent
// result cache (src/io/result_cache.h): every cache entry records the
// version string that produced it, and entries from a different version
// are treated as stale and re-solved, so a solver change can never serve
// outdated bounds.  Keep in sync with the project() version in the
// top-level CMakeLists.txt.
#pragma once

#define DELTANC_VERSION_MAJOR 1
#define DELTANC_VERSION_MINOR 1
#define DELTANC_VERSION_PATCH 0

#define DELTANC_VERSION_STRING "1.1.0"

namespace deltanc {

/// "major.minor.patch", e.g. "1.1.0".
[[nodiscard]] constexpr const char* version_string() noexcept {
  return DELTANC_VERSION_STRING;
}

[[nodiscard]] constexpr int version_major() noexcept {
  return DELTANC_VERSION_MAJOR;
}
[[nodiscard]] constexpr int version_minor() noexcept {
  return DELTANC_VERSION_MINOR;
}
[[nodiscard]] constexpr int version_patch() noexcept {
  return DELTANC_VERSION_PATCH;
}

}  // namespace deltanc
