// Umbrella header: the supported public surface of the library in one
// include.  Everything re-exported here is covered by the API tour in
// docs/API.md, round-trips through the JSON codec where applicable, and
// is kept stable across minor versions; headers under src/ that are not
// re-exported here are internal machinery and may change freely.
//
//   #include "deltanc/deltanc.h"
//
//   using namespace deltanc;
//   const e2e::Scenario sc = ScenarioBuilder().hops(5).build();
//   const e2e::BoundResult r = Solver().solve(sc);
//
// The DELTANC_VERSION_{MAJOR,MINOR,PATCH} macro trio lives in
// deltanc/version.h (also included here); the version string feeds the
// persistent result cache so stale entries are never served.
#pragma once

#include "deltanc/version.h"

// Scheduler identity: one tagged descriptor spanning solver, sweep,
// cache, CLI, and both simulators.
#include "sched/scheduler_spec.h"  // sched::SchedulerSpec, SchedulerKind

// Scenario description and validation.
#include "core/scenario.h"   // ScenarioBuilder, flows_for_utilization
#include "e2e/param_search.h"  // e2e::Scenario, BoundResult, SolveStats

// Solving: the Solver facade is the sole entry point (the historical
// free-function shims were retired in PR 9; see docs/API.md for the
// migration table).  Solver::State carries warm-start context between
// related solves.
#include "e2e/solver.h"  // Solver, SolveOptions, Solver::State

// One-scenario analysis and grids of scenarios.
#include "core/analyzer.h"  // PathAnalyzer, ValidationReport
#include "core/sweep.h"     // SweepGrid, SweepRunner, SweepReport

// Diagnostics taxonomy and invariant self-checks.
#include "core/diagnostics.h"  // diag::SolveErrorKind, Diagnostics, ...
#include "core/selfcheck.h"    // self_check, SelfCheckReport

// Serialization, persistent result cache, batch service.
#include "io/batch.h"         // io::run_batch, BatchOptions, BatchSummary
#include "io/codec.h"         // io::encode_*/decode_*, solve_cache_key
#include "io/json.h"          // io::json::Value
#include "io/result_cache.h"  // io::ResultCache, CacheStats
