// Delay-CCDF comparison: the analytic bound d(eps) as a function of the
// violation probability, next to the empirical CCDF of a long simulation
// of the same tandem.  The analytic curve must lie right of (above) the
// empirical one at every level -- and the horizontal gap visualizes how
// much of the bound is union-bound slack vs. genuine tail risk.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"
#include "e2e/solver.h"
#include "sim/stats.h"

int main() {
  using namespace deltanc;

  const e2e::Scenario scenario = ScenarioBuilder()
                                     .hops(3)
                                     .through_flows(250)
                                     .cross_flows(250)
                                     .scheduler(sched::SchedulerKind::kFifo)
                                     .build();
  std::printf("Delay CCDF: analytic bound vs simulated tail "
              "(FIFO, H = 3, U ~ 75%%)\n\n");

  constexpr std::int64_t kSlots = 400000;
  const PathAnalyzer analyzer(scenario);
  const sim::TandemResult sim_result = analyzer.simulate(kSlots, 123);

  const std::vector<double> epsilons{1e-1, 1e-2, 1e-3, 1e-4, 1e-6, 1e-9};
  // One chained profile solve across the whole epsilon grid (the levels
  // share the eb memo / stable-s bracket / optimum probe).
  SolveOptions options;
  options.warm_start = e2e::WarmStart::kWarm;
  const e2e::DelayProfile profile =
      Solver(options).solve_profile(scenario, epsilons);

  Table table({"epsilon", "analytic d(eps) [ms]", "simulated q [ms]",
               "holds"});
  bool all_hold = true;
  for (std::size_t i = 0; i < profile.levels.size(); ++i) {
    const double eps = profile.epsilons[i];
    const double bound = profile.levels[i].delay_ms;
    std::string sim_cell = "-";
    bool holds = true;
    if (sim::quantile_resolvable(eps, sim_result.through_delay.count())) {
      const double q = sim_result.through_delay.quantile(1.0 - eps);
      holds = q <= bound;
      sim_cell = Table::format(q);
    }
    all_hold = all_hold && holds;
    table.add_row({Table::format(eps, 10), Table::format(bound),
                   sim_cell, holds ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\n(simulated cells appear only where the tail is resolvable "
              "from %zu samples)\n%s\n",
              sim_result.through_delay.count(),
              all_hold ? "All resolvable levels dominated by the bound."
                       : "BOUND VIOLATION DETECTED");
  return all_hold ? 0 : 1;
}
