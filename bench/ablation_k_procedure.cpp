// Ablation A: the paper's explicit K-procedure (Eqs. 40-42) vs the exact
// minimizer of Eq. (39) (breakpoint enumeration).  The paper notes its
// choices are "not claimed optimal" but that K is usually close to H,
// making the result near-optimal -- this bench quantifies the gap across
// the Fig.-2 style operating grid for FIFO- and EDF-like Deltas.
#include <cmath>
#include <cstdio>
#include <limits>
#include <iostream>

#include "core/table.h"
#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/network_epsilon.h"
#include "e2e/solver.h"

int main() {
  using namespace deltanc;
  using namespace deltanc::e2e;
  std::printf("Ablation A: paper K-procedure vs exact optimizer of Eq. (39)\n");
  std::printf("(C = 100, rho = 15, alpha = 0.05, eps = 1e-9)\n\n");

  Table table({"H", "rho_c", "Delta", "K", "exact d [ms]",
               "K-proc d [ms]", "rel gap [%]"});
  double worst = 0.0;
  for (int hops : {2, 5, 10, 20}) {
    for (double rho_c : {15.0, 35.0, 60.0}) {
      for (double delta : {-40.0, -5.0, 0.0, 5.0, 40.0,
                           std::numeric_limits<double>::infinity()}) {
        const PathParams p{100.0, hops, 15.0, rho_c, 0.05, 1.0, delta};
        const double gamma = 0.4 * p.gamma_limit();
        const double sigma = sigma_for_epsilon(p, gamma, 1e-9);
        const double exact = deltanc::Solver().optimize(p, gamma, sigma).delay;
        const double paper = deltanc::Solver(deltanc::e2e::Method::kPaperK).optimize(p, gamma, sigma).delay;
        const int k = k_procedure_index(p, gamma, sigma);
        const double gap = 100.0 * (paper - exact) / exact;
        worst = std::max(worst, gap);
        table.add_row({std::to_string(hops), Table::format(rho_c, 0),
                       Table::format(delta, 0), std::to_string(k),
                       Table::format(exact), Table::format(paper),
                       Table::format(gap, 3)});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nlargest suboptimality of the paper's procedure: %.3f%%\n"
      "The gap is ~0 except for strongly negative Delta on short paths:\n"
      "there the paper's K = 0 rule (X = -Delta, Eq. 42) overshoots, since\n"
      "it assumes every theta_h is still positive at X = -Delta.  The exact\n"
      "breakpoint enumeration (e2e/delay_bound.h) finds the interior\n"
      "optimum the rule misses -- consistent with the paper's own caveat\n"
      "that its choices are near-optimal, not optimal.\n",
      worst);
  return 0;
}
