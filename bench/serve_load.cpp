// Closed-loop load generator for `deltanc_cli --serve` -- the client
// half of the persistent-service robustness story (scripts/check_serve.sh
// drives both).  Two modes over one Unix-domain socket connection:
//
//   * generated (default): --requests N mixed cold/warm requests over
//     --unique K distinct scenarios.  Phase 1 sends each unique
//     scenario once (every request a cold solve), phase 2 cycles them
//     (every request a warm hit), so the printed cold_rps / warm_rps
//     split measures exactly the cache's value under load.
//   * replay: --input <file> sends an existing JSONL request file and
//     writes the responses (arrival order) to --output, which is how
//     the check script collects served responses to diff against the
//     one-shot --batch baseline.
//
// A bounded window of outstanding requests (--window) keeps the
// generator closed-loop: it never outruns the server's bounded queues,
// so an overload response in the output indicates a server-side
// problem, not a hot-headed client.  Per-request latency is measured
// send-to-receive by the echoed numeric id; the summary reports p50 /
// p99 / req/s plus the cold/warm split, machine-greppable:
//
//   serve_load: requests=.. answered=.. errors=.. p50_ms=.. p99_ms=..
//               wall_ms=.. rps=..
//   serve_load: cold_requests=.. cold_rps=.. warm_requests=..
//               warm_rps=.. warm_cold_ratio=..
//
// --truncate-probe appends one extra request written WITHOUT a trailing
// newline before half-closing the socket -- the truncated-client-write
// fault.  The server must still answer it (exit 1 here if not).
//
// --hangup-probe opens a throwaway connection that sends requests and
// fully closes without reading a byte, so the server's responses hit a
// dead socket (EPIPE).  The probe itself cannot observe the outcome;
// the point is the subsequent SIGTERM drain in check_serve.sh, which
// hangs if a wedged connection thread never settles its count.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "io/codec.h"
#include "sched/scheduler_spec.h"

namespace {

using namespace deltanc;
using Clock = std::chrono::steady_clock;

struct Args {
  std::string socket_path;
  long long requests = 1000;
  long long unique = 64;
  int window = 64;
  std::string input;   ///< replay mode when non-empty
  std::string output;  ///< where replay responses land ("" = discard)
  bool truncate_probe = false;
  bool hangup_probe = false;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "serve_load: %s\n"
               "usage: serve_load --socket <path> [--requests N] "
               "[--unique K] [--window W]\n"
               "                  [--input requests.jsonl "
               "[--output responses.jsonl]] [--truncate-probe] "
               "[--hangup-probe]\n",
               message.c_str());
  std::exit(2);
}

double parse_number(const char* text, const std::string& flag) {
  double out = 0.0;
  if (!sched::parse_strict_double(text, out)) {
    usage_error("bad numeric value for " + flag);
  }
  return out;
}

/// Shared send/receive bookkeeping, keyed by the numeric request id.
struct Tracker {
  std::mutex mu;
  std::condition_variable cv;
  int outstanding = 0;
  long long answered = 0;
  long long errors = 0;  ///< ok=false responses
  std::vector<double> send_ms;
  std::vector<double> recv_ms;

  void sent(std::size_t id, double now_ms) {
    std::lock_guard<std::mutex> lock(mu);
    if (send_ms.size() <= id) {
      send_ms.resize(id + 1, -1.0);
      recv_ms.resize(id + 1, -1.0);
    }
    send_ms[id] = now_ms;
    ++outstanding;
  }

  void received(std::size_t id, bool ok, double now_ms) {
    std::lock_guard<std::mutex> lock(mu);
    if (id < recv_ms.size()) recv_ms[id] = now_ms;
    ++answered;
    if (!ok) ++errors;
    --outstanding;
    cv.notify_all();
  }

  void wait_window(int window) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding < window; });
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
};

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      std::fprintf(stderr, "serve_load: server hung up mid-send\n");
      std::exit(1);
    }
    sent += static_cast<std::size_t>(n);
  }
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Reads response lines until EOF, recording latency by echoed id and
/// appending raw lines to `capture` (when non-null).
void receive_loop(int fd, Clock::time_point t0, Tracker& tracker,
                  std::ofstream* capture) {
  std::string buffer;
  char chunk[65536];
  const auto handle = [&](const std::string& line) {
    if (line.empty()) return;
    if (capture != nullptr) *capture << line << '\n';
    bool ok = false;
    std::size_t id = 0;
    bool have_id = false;
    try {
      const io::json::Value doc = io::json::Value::parse(line);
      if (const io::json::Value* v = doc.find("ok")) ok = v->as_bool();
      if (const io::json::Value* v = doc.find("id"); v && v->is_number()) {
        id = static_cast<std::size_t>(v->as_number());
        have_id = true;
      }
    } catch (const std::exception&) {
      // An unparseable response still settles the window (counted as
      // an error) so the generator cannot deadlock on a corrupt line.
    }
    tracker.received(have_id ? id : 0, ok, ms_since(t0));
  };
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      handle(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (!buffer.empty()) handle(buffer);
}

/// K distinct request payloads (scenario varies by cross-flow count, so
/// every unique index is a distinct cache key), rendered once and
/// re-stamped with fresh ids as the phases cycle through them.
std::vector<std::string> make_payloads(long long unique) {
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(unique));
  for (long long i = 0; i < unique; ++i) {
    ScenarioBuilder builder;
    builder.hops(3).cross_flows(static_cast<int>(40 + i));
    const e2e::Scenario scenario = builder.build();
    SolveOptions options;
    io::json::Value req = io::json::Value::object();
    req.set("schema", io::json::Value::number(io::kSchemaVersion))
        .set("scenario", io::encode_scenario(scenario))
        .set("options", io::encode_solve_options(options));
    payloads.push_back(req.dump());
  }
  return payloads;
}

/// Stamps an "id" field into a rendered request object.  The id is the
/// latency-tracking key, so it must be first-class JSON -- splice it in
/// before the closing brace.
std::string with_id(const std::string& payload, long long id) {
  std::string out = payload;
  out.insert(out.size() - 1, ",\"id\":" + std::to_string(id));
  return out;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value after " + flag);
      return argv[++i];
    };
    if (flag == "--socket") {
      args.socket_path = next();
    } else if (flag == "--requests") {
      args.requests = static_cast<long long>(parse_number(next(), flag));
      if (args.requests < 1) usage_error("--requests must be >= 1");
    } else if (flag == "--unique") {
      args.unique = static_cast<long long>(parse_number(next(), flag));
      if (args.unique < 1) usage_error("--unique must be >= 1");
    } else if (flag == "--window") {
      args.window = static_cast<int>(parse_number(next(), flag));
      if (args.window < 1) usage_error("--window must be >= 1");
    } else if (flag == "--input") {
      args.input = next();
    } else if (flag == "--output") {
      args.output = next();
    } else if (flag == "--truncate-probe") {
      args.truncate_probe = true;
    } else if (flag == "--hangup-probe") {
      args.hangup_probe = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (args.socket_path.empty()) usage_error("--socket is required");
  if (args.unique > args.requests) args.unique = args.requests;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    usage_error("socket path too long");
  }
  std::memcpy(addr.sun_path, args.socket_path.c_str(),
              args.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    std::fprintf(stderr, "serve_load: cannot connect to %s: %s\n",
                 args.socket_path.c_str(), std::strerror(errno));
    return 1;
  }

  // Client-hangup probe: a throwaway connection that submits requests
  // and fully closes without reading.  Every response the server then
  // writes hits a dead socket (EPIPE); the server must count them as
  // dropped and still settle that connection -- a wedged thread shows
  // up later as a hanging SIGTERM drain.
  if (args.hangup_probe) {
    const int hfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (hfd < 0 || ::connect(hfd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      std::fprintf(stderr, "serve_load: hangup probe cannot connect: %s\n",
                   std::strerror(errno));
      return 1;
    }
    const std::string line = with_id(make_payloads(1)[0], 0) + "\n";
    for (int k = 0; k < 4; ++k) send_all(hfd, line.data(), line.size());
    ::close(hfd);
  }

  std::ofstream capture;
  if (!args.output.empty()) {
    capture.open(args.output);
    if (!capture) {
      std::fprintf(stderr, "serve_load: cannot write %s\n",
                   args.output.c_str());
      return 1;
    }
  }

  Tracker tracker;
  const auto t0 = Clock::now();
  std::thread receiver([&] {
    receive_loop(fd, t0, tracker,
                 args.output.empty() ? nullptr : &capture);
  });

  long long expected = 0;
  long long cold_n = 0, warm_n = 0;
  double cold_wall_ms = 0.0, warm_wall_ms = 0.0;

  const auto send_line = [&](const std::string& line, long long id) {
    tracker.wait_window(args.window);
    tracker.sent(static_cast<std::size_t>(id), ms_since(t0));
    const std::string framed = line + "\n";
    send_all(fd, framed.data(), framed.size());
    ++expected;
  };

  if (!args.input.empty()) {
    // Replay mode: the file's own ids are echoed back, but latency
    // bookkeeping needs dense numeric keys -- use the line number.
    std::ifstream in(args.input);
    if (!in) {
      std::fprintf(stderr, "serve_load: cannot read %s\n",
                   args.input.c_str());
      return 1;
    }
    std::string line;
    long long id = 0;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      send_line(line, id++);
    }
  } else {
    const std::vector<std::string> payloads = make_payloads(args.unique);
    // Phase 1 (cold): each unique scenario once.
    const auto cold_t0 = Clock::now();
    for (long long id = 0; id < args.unique; ++id) {
      send_line(with_id(payloads[static_cast<std::size_t>(id)], id), id);
    }
    tracker.wait_idle();
    cold_wall_ms = ms_since(cold_t0);
    cold_n = args.unique;
    // Phase 2 (warm): cycle the same scenarios for the remainder.
    const auto warm_t0 = Clock::now();
    for (long long id = args.unique; id < args.requests; ++id) {
      const std::size_t slot =
          static_cast<std::size_t>(id % args.unique);
      send_line(with_id(payloads[slot], id), id);
    }
    tracker.wait_idle();
    warm_wall_ms = ms_since(warm_t0);
    warm_n = args.requests - args.unique;
  }

  // Truncated-client-write probe: one more request, no trailing
  // newline, then half-close.  The server must answer it anyway.
  if (args.truncate_probe) {
    const std::string line = with_id(make_payloads(1)[0], expected);
    tracker.sent(static_cast<std::size_t>(expected), ms_since(t0));
    send_all(fd, line.data(), line.size());
    ++expected;
  }
  ::shutdown(fd, SHUT_WR);
  receiver.join();
  ::close(fd);
  const double wall_ms = ms_since(t0);

  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(tracker.mu);
    for (std::size_t i = 0; i < tracker.send_ms.size(); ++i) {
      if (tracker.send_ms[i] >= 0 && tracker.recv_ms[i] >= 0) {
        latencies.push_back(tracker.recv_ms[i] - tracker.send_ms[i]);
      }
    }
  }
  const long long answered = tracker.answered;
  const double rps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(answered) / wall_ms : 0.0;
  std::printf(
      "serve_load: requests=%lld answered=%lld errors=%lld p50_ms=%.3f "
      "p99_ms=%.3f wall_ms=%.1f rps=%.0f\n",
      expected, answered, tracker.errors, percentile(latencies, 0.50),
      percentile(latencies, 0.99), wall_ms, rps);
  if (cold_n > 0 && warm_n > 0) {
    const double cold_rps =
        cold_wall_ms > 0 ? 1000.0 * static_cast<double>(cold_n) / cold_wall_ms
                         : 0.0;
    const double warm_rps =
        warm_wall_ms > 0 ? 1000.0 * static_cast<double>(warm_n) / warm_wall_ms
                         : 0.0;
    std::printf(
        "serve_load: cold_requests=%lld cold_rps=%.0f warm_requests=%lld "
        "warm_rps=%.0f warm_cold_ratio=%.1f\n",
        cold_n, cold_rps, warm_n, warm_rps,
        cold_rps > 0 ? warm_rps / cold_rps : 0.0);
  }
  if (answered != expected) {
    std::fprintf(stderr,
                 "serve_load: FAIL %lld of %lld requests never answered\n",
                 expected - answered, expected);
    return 1;
  }
  return tracker.errors > 0 ? 3 : 0;
}
