// Reproduces Fig. 4 (Example 3): end-to-end delay bounds vs path length H
// for U = 10, 50, 90% with N_0 = N_c, eps = 1e-9.  Four curves per
// utilization: BMUX / FIFO / EDF via the network service curve
// (Theta(H log H) growth), plus the node-by-node additive BMUX baseline
// (O(H^3 log H) growth).
//
// Two sweeps per utilization run on the parallel engine (core/sweep.h):
// a hops x scheduler grid for the network-service-curve bounds and a
// hops-only grid with the solver overridden to the additive baseline
// (SweepOptions::solver), 40 points per utilization in total.
//
// Expected shape (paper): near-linear growth for the network-service-
// curve bounds with FIFO and BMUX visually identical; EDF noticeably
// lower at the higher utilizations; the additive baseline blows up.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/scenario.h"
#include "core/sweep.h"
#include "core/table.h"
#include "e2e/additive_baseline.h"

int main() {
  using namespace deltanc;
  std::printf("Fig. 4 / Example 3: delay bounds vs path length H\n");
  std::printf("(N0 = Nc, C = 100 Mbps, eps = 1e-9; delays in ms)\n\n");

  const std::vector<int> hops_values = {1, 2, 4, 6, 8, 10, 13, 16, 20, 25};
  const std::vector<sched::SchedulerKind> scheds = {
      sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux};

  const SweepRunner runner;
  SweepOptions additive_opts;
  additive_opts.solver = [](const e2e::Scenario& sc, e2e::Method) {
    return e2e::best_additive_bmux_bound(sc);
  };
  const SweepRunner additive_runner(additive_opts);

  double total_wall_ms = 0.0;
  std::size_t total_points = 0;
  int threads = 1;

  for (double u : {0.10, 0.50, 0.90}) {
    const e2e::Scenario base = ScenarioBuilder()
                                   .through_utilization(u / 2.0)
                                   .cross_utilization(u / 2.0)
                                   .violation_probability(1e-9)
                                   .edf_deadlines(1.0, 10.0)
                                   .build();
    SweepGrid grid(base);
    grid.hops_axis(hops_values).scheduler_axis(scheds);
    SweepGrid additive_grid(base);  // scheduler is irrelevant to the solver
    additive_grid.hops_axis(hops_values);

    const SweepReport bounds = runner.run(grid);
    const SweepReport additive = additive_runner.run(additive_grid);
    total_wall_ms += bounds.wall_ms + additive.wall_ms;
    total_points += bounds.points.size() + additive.points.size();
    threads = bounds.threads;

    Table table({"H", "EDF", "FIFO", "BMUX", "BMUX additive"});
    for (std::size_t hi = 0; hi < hops_values.size(); ++hi) {
      const auto delay = [&](std::size_t si) {
        return bounds.points[hi * scheds.size() + si].bound.delay_ms;
      };
      table.add_row(std::to_string(hops_values[hi]),
                    {delay(0), delay(1), delay(2),
                     additive.points[hi].bound.delay_ms});
    }
    std::printf("--- U = %.0f%% ---\n", 100.0 * u);
    table.print(std::cout);
    std::printf("\ncsv:\n");
    table.print_csv(std::cout);
    std::printf("\n");
  }
  std::fprintf(stderr, "sweep: %zu points in %.0f ms on %d thread(s)\n",
               total_points, total_wall_ms, threads);
  return 0;
}
