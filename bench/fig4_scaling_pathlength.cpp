// Reproduces Fig. 4 (Example 3): end-to-end delay bounds vs path length H
// for U = 10, 50, 90% with N_0 = N_c, eps = 1e-9.  Four curves per
// utilization: BMUX / FIFO / EDF via the network service curve
// (Theta(H log H) growth), plus the node-by-node additive BMUX baseline
// (O(H^3 log H) growth).
//
// Expected shape (paper): near-linear growth for the network-service-
// curve bounds with FIFO and BMUX visually identical; EDF noticeably
// lower at the higher utilizations; the additive baseline blows up.
#include <cstdio>
#include <iostream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"

int main() {
  using namespace deltanc;
  std::printf("Fig. 4 / Example 3: delay bounds vs path length H\n");
  std::printf("(N0 = Nc, C = 100 Mbps, eps = 1e-9; delays in ms)\n\n");

  for (double u : {0.10, 0.50, 0.90}) {
    Table table({"H", "EDF", "FIFO", "BMUX", "BMUX additive"});
    for (int hops : {1, 2, 4, 6, 8, 10, 13, 16, 20, 25}) {
      const auto builder = [&](e2e::Scheduler s) {
        return ScenarioBuilder()
            .hops(hops)
            .through_utilization(u / 2.0)
            .cross_utilization(u / 2.0)
            .violation_probability(1e-9)
            .scheduler(s)
            .edf_deadlines(1.0, 10.0)
            .build();
      };
      table.add_row(
          std::to_string(hops),
          {PathAnalyzer(builder(e2e::Scheduler::kEdf)).bound().delay_ms,
           PathAnalyzer(builder(e2e::Scheduler::kFifo)).bound().delay_ms,
           PathAnalyzer(builder(e2e::Scheduler::kBmux)).bound().delay_ms,
           PathAnalyzer(builder(e2e::Scheduler::kBmux))
               .additive_bound()
               .delay_ms});
    }
    std::printf("--- U = %.0f%% ---\n", 100.0 * u);
    table.print(std::cout);
    std::printf("\ncsv:\n");
    table.print_csv(std::cout);
    std::printf("\n");
  }
  return 0;
}
