// Microbenchmarks (google-benchmark) for the computational kernels:
// min-plus convolution, the Eq. (39) optimizers, the closed-form epsilon
// algebra, effective-bandwidth evaluation, and the simulator's slot rate.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "core/thread_pool.h"
#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/network_epsilon.h"
#include "e2e/param_search.h"
#include "e2e/solver.h"
#include "io/result_cache.h"
#include "nc/minplus_ops.h"
#include "sim/tandem.h"
#include "traffic/mmoo.h"

namespace {

using namespace deltanc;

void BM_MinplusConvRateLatency(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<nc::Curve> curves;
  for (std::int64_t i = 0; i < n; ++i) {
    curves.push_back(nc::Curve::rate_latency(100.0 - static_cast<double>(i),
                                             0.5 + 0.1 * static_cast<double>(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nc::minplus_conv(std::span<const nc::Curve>(curves)));
  }
}
BENCHMARK(BM_MinplusConvRateLatency)->Arg(2)->Arg(8)->Arg(32);

void BM_MinplusConvGatedCurves(benchmark::State& state) {
  const nc::Curve a = nc::Curve::affine(5.0, 3.0).gated(2.0);
  const nc::Curve b = nc::Curve::affine(2.0, 4.0).gated(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nc::minplus_conv(a, b));
  }
}
BENCHMARK(BM_MinplusConvGatedCurves);

void BM_ServiceDelayBound(benchmark::State& state) {
  const nc::Curve e = nc::Curve::leaky_bucket(2.0, 6.0);
  const nc::Curve s = nc::Curve::rate_latency(3.0, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nc::service_delay_bound(e, s));
  }
}
BENCHMARK(BM_ServiceDelayBound);

void BM_OptimizeDelayExact(benchmark::State& state) {
  const e2e::PathParams p{100.0, static_cast<int>(state.range(0)), 15.0,
                          35.0,  0.05, 1.0, -5.0};
  const double gamma = 0.4 * p.gamma_limit();
  const double sigma = e2e::sigma_for_epsilon(p, gamma, 1e-9);
  const Solver solver{};  // reuse_workspace: allocation-free inner loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(p, gamma, sigma));
  }
}
BENCHMARK(BM_OptimizeDelayExact)->Arg(2)->Arg(10)->Arg(30);

void BM_KProcedure(benchmark::State& state) {
  const e2e::PathParams p{100.0, static_cast<int>(state.range(0)), 15.0,
                          35.0,  0.05, 1.0, -5.0};
  const double gamma = 0.4 * p.gamma_limit();
  const double sigma = e2e::sigma_for_epsilon(p, gamma, 1e-9);
  const Solver solver(e2e::Method::kPaperK);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.optimize(p, gamma, sigma));
  }
}
BENCHMARK(BM_KProcedure)->Arg(10)->Arg(30);

void BM_FullScenarioSolve(benchmark::State& state) {
  e2e::Scenario sc;
  sc.hops = static_cast<int>(state.range(0));
  sc.n_through = 100;
  sc.n_cross = 236;
  sc.scheduler = sched::SchedulerKind::kFifo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deltanc::Solver().solve(sc));
  }
}
BENCHMARK(BM_FullScenarioSolve)->Arg(2)->Arg(10)->Unit(benchmark::kMillisecond);

// The Fig. 2 (H = 5) sweep grid at a loose epsilon: 8 utilization points
// x 3 schedulers = 24 independent solves.  Arg(0) is the worker count;
// compare threads:1 against threads:N for the parallel speedup (the
// sweep is embarrassingly parallel, so throughput should scale almost
// linearly up to the core count).
void BM_SweepFig2Grid(benchmark::State& state) {
  e2e::Scenario base;
  base.hops = 5;
  base.n_through = 100;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.cross_utilization_axis(SweepGrid::linspace(0.10, 0.80, 8))
      .scheduler_axis({sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo,
                       sched::SchedulerKind::kBmux});
  SweepOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  const SweepRunner runner(opts);
  e2e::SolveStats last_stats{};
  for (auto _ : state) {
    SweepReport report = runner.run(grid);
    last_stats = report.stats;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(grid.size()));
  state.counters["threads"] =
      static_cast<double>(runner.resolved_threads(grid.size()));
  // Algorithmic-work counters (per grid point, not per second): a jump in
  // optimize_evals flags a search-strategy regression independent of the
  // machine; eb_evals stays low because of the per-solve memo.
  const double points = static_cast<double>(grid.size());
  state.counters["optimize_evals_per_point"] =
      static_cast<double>(last_stats.optimize_evals) / points;
  state.counters["eb_evals_per_point"] =
      static_cast<double>(last_stats.eb_evals) / points;
}
BENCHMARK(BM_SweepFig2Grid)
    ->Arg(1)
    ->Arg(static_cast<int>(ThreadPool::default_thread_count()))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The headline claim of the profile engine: one warm-chained 16-level
// d(epsilon) profile vs 16 independent cold scalar solves of the same
// scenario.  Arg(0) selects the mode (0 = cold scalars, 1 = warm
// profile); the ratio of the two real times is the chaining speedup
// (scripts/check.sh gates the counter-based equivalent at >= 3x).
void BM_ProfileVsScalar(benchmark::State& state) {
  const bool warm_profile = state.range(0) != 0;
  e2e::Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = 236;
  sc.scheduler = sched::SchedulerKind::kFifo;
  // 16 levels, log-spaced over [1e-9, 1e-3] -- the --ccdf default shape.
  std::vector<double> epsilons;
  for (int i = 0; i < 16; ++i) {
    epsilons.push_back(
        std::exp(std::log(1e-3) + (std::log(1e-9) - std::log(1e-3)) *
                                      static_cast<double>(i) / 15.0));
  }
  SolveOptions options;
  options.warm_start =
      warm_profile ? e2e::WarmStart::kWarm : e2e::WarmStart::kCold;
  const deltanc::Solver solver(options);
  e2e::SolveStats last_stats{};
  for (auto _ : state) {
    if (warm_profile) {
      e2e::DelayProfile profile = solver.solve_profile(sc, epsilons);
      last_stats = profile.stats;
      benchmark::DoNotOptimize(profile);
    } else {
      // The cold baseline solved the honest way: K independent scalar
      // solves (bit-identical to a kCold solve_profile by contract).
      last_stats = e2e::SolveStats{};
      for (double eps : epsilons) {
        e2e::Scenario level = sc;
        level.epsilon = eps;
        e2e::BoundResult r = solver.solve(level);
        last_stats += r.stats;
        benchmark::DoNotOptimize(r);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["optimize_evals"] =
      static_cast<double>(last_stats.optimize_evals);
  state.counters["chain_hits"] =
      static_cast<double>(last_stats.profile_chain_hits);
}
BENCHMARK(BM_ProfileVsScalar)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> sink{0};
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(1)->Arg(4);

void BM_EffectiveBandwidth(benchmark::State& state) {
  const auto src = traffic::MmooSource::paper_source();
  double s = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.effective_bandwidth(s));
    s = s < 60.0 ? s * 1.01 : 0.001;
  }
}
BENCHMARK(BM_EffectiveBandwidth);

void BM_TandemSlots(benchmark::State& state) {
  sim::TandemConfig c;
  c.hops = 3;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = state.range(0);
  c.warmup_slots = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_tandem(c));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TandemSlots)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_JsonBoundResultRoundTrip(benchmark::State& state) {
  e2e::Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = 268;
  sc.epsilon = 1e-6;
  const e2e::BoundResult solved = deltanc::Solver().solve(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::decode_bound_result(
        io::json::Value::parse(io::encode_bound_result(solved).dump())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsonBoundResultRoundTrip);

void BM_ResultCacheHit(benchmark::State& state) {
  // Steady-state hit cost: key canonicalization + file read + decode.
  // This is what bounds warm `--batch` throughput.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "deltanc_bench_cache";
  std::filesystem::remove_all(dir);
  io::ResultCache cache(dir);
  e2e::Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = 268;
  sc.epsilon = 1e-6;
  const SolveOptions options;
  const std::string key = io::solve_cache_key(sc, options);
  cache.store(key, deltanc::Solver().solve(sc));
  e2e::BoundResult out;
  for (auto _ : state) {
    const auto found = cache.lookup(key, out);
    if (found != io::CacheLookup::kHit) state.SkipWithError("cache missed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ResultCacheHit);

}  // namespace

BENCHMARK_MAIN();
