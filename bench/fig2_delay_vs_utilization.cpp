// Reproduces Fig. 2 (Example 1) of "Does Link Scheduling Matter on Long
// Paths?": end-to-end delay bounds of the through traffic for EDF
// (d*_0 = d_e2e/H, d*_c = 10 d_e2e/H), BMUX, and FIFO as a function of
// the total utilization U, with the through load fixed at U_0 = 15%
// (N_0 = 100 paper flows), H = 2, 5, 10, eps = 1e-9.
//
// Expected shape (paper): FIFO indistinguishable from BMUX from H = 5 on;
// EDF noticeably lower with a gap that grows with the path length.
#include <cstdio>
#include <iostream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"

int main() {
  using namespace deltanc;
  std::printf("Fig. 2 / Example 1: delay bounds vs total utilization U\n");
  std::printf("(U0 = 15%% fixed, C = 100 Mbps, eps = 1e-9; delays in ms)\n\n");

  for (int hops : {2, 5, 10}) {
    Table table({"U [%]", "EDF", "FIFO", "BMUX"});
    for (int u_pct = 20; u_pct <= 95; u_pct += 5) {
      const double uc = u_pct / 100.0 - 0.15;
      const auto bound_for = [&](e2e::Scheduler s) {
        return PathAnalyzer(ScenarioBuilder()
                                .hops(hops)
                                .through_flows(100)
                                .cross_utilization(uc)
                                .violation_probability(1e-9)
                                .scheduler(s)
                                .edf_deadlines(1.0, 10.0)
                                .build())
            .bound()
            .delay_ms;
      };
      table.add_row(std::to_string(u_pct),
                    {bound_for(e2e::Scheduler::kEdf),
                     bound_for(e2e::Scheduler::kFifo),
                     bound_for(e2e::Scheduler::kBmux)});
    }
    std::printf("--- H = %d ---\n", hops);
    table.print(std::cout);
    std::printf("\ncsv:\n");
    table.print_csv(std::cout);
    std::printf("\n");
  }
  return 0;
}
