// Reproduces Fig. 2 (Example 1) of "Does Link Scheduling Matter on Long
// Paths?": end-to-end delay bounds of the through traffic for EDF
// (d*_0 = d_e2e/H, d*_c = 10 d_e2e/H), BMUX, and FIFO as a function of
// the total utilization U, with the through load fixed at U_0 = 15%
// (N_0 = 100 paper flows), H = 2, 5, 10, eps = 1e-9.
//
// The 3 x 16-point grid per path length is solved by the parallel sweep
// engine (core/sweep.h); thread count via DELTANC_THREADS (default: all
// cores).  Results are deterministic regardless of the thread count.
//
// Expected shape (paper): FIFO indistinguishable from BMUX from H = 5 on;
// EDF noticeably lower with a gap that grows with the path length.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/scenario.h"
#include "core/sweep.h"
#include "core/table.h"

int main() {
  using namespace deltanc;
  std::printf("Fig. 2 / Example 1: delay bounds vs total utilization U\n");
  std::printf("(U0 = 15%% fixed, C = 100 Mbps, eps = 1e-9; delays in ms)\n\n");

  std::vector<int> u_pcts;
  std::vector<double> cross_utils;
  for (int u_pct = 20; u_pct <= 95; u_pct += 5) {
    u_pcts.push_back(u_pct);
    cross_utils.push_back(u_pct / 100.0 - 0.15);
  }
  const std::vector<sched::SchedulerKind> scheds = {
      sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux};

  const SweepRunner runner;
  double total_wall_ms = 0.0;
  std::size_t total_points = 0;
  int threads = 1;

  for (int hops : {2, 5, 10}) {
    SweepGrid grid(ScenarioBuilder()
                       .hops(hops)
                       .through_flows(100)
                       .violation_probability(1e-9)
                       .edf_deadlines(1.0, 10.0)
                       .build());
    grid.cross_utilization_axis(cross_utils).scheduler_axis(scheds);
    const SweepReport report = runner.run(grid);
    total_wall_ms += report.wall_ms;
    total_points += report.points.size();
    threads = report.threads;

    Table table({"U [%]", "EDF", "FIFO", "BMUX"});
    for (std::size_t ui = 0; ui < u_pcts.size(); ++ui) {
      // Grid order: first axis (load) outermost, scheduler innermost.
      const auto delay = [&](std::size_t si) {
        return report.points[ui * scheds.size() + si].bound.delay_ms;
      };
      table.add_row(std::to_string(u_pcts[ui]), {delay(0), delay(1), delay(2)});
    }
    std::printf("--- H = %d ---\n", hops);
    table.print(std::cout);
    std::printf("\ncsv:\n");
    table.print_csv(std::cout);
    std::printf("\n");
  }
  std::fprintf(stderr, "sweep: %zu points in %.0f ms on %d thread(s)\n",
               total_points, total_wall_ms, threads);
  return 0;
}
