// Reproduces Fig. 3 (Example 2): end-to-end delay bounds as a function of
// the traffic mix U_c / U at constant total utilization U = 50%, for
// H = 2, 5, 10.  Schedulers: FIFO, BMUX, and two EDF settings -- shorter
// deadlines for the through traffic (d*_0 = d*_c / 2) and longer ones
// (d*_0 = 2 d*_c).
//
// The mix axis is not a cross product (U0 and Uc co-vary at constant U),
// so the scenario list is built explicitly and handed to the sweep
// engine's list API; 9 mixes x 4 columns x 3 path lengths = 108 solves,
// fanned out across all cores (DELTANC_THREADS overrides).
//
// Expected shape (paper): at H = 2, EDF with favoured through traffic is
// almost insensitive to the mix (larger cross share even helps); as H
// grows all curves steepen and FIFO collapses onto BMUX.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/scenario.h"
#include "core/sweep.h"
#include "core/table.h"

int main() {
  using namespace deltanc;
  std::printf("Fig. 3 / Example 2: delay bounds vs traffic mix Uc/U\n");
  std::printf("(U = 50%% fixed, C = 100 Mbps, eps = 1e-9; delays in ms)\n\n");

  constexpr double kU = 0.50;
  // The four columns of the figure: scheduler + EDF deadline factors.
  struct Column {
    sched::SchedulerKind sched;
    double own, cross;
  };
  const std::vector<Column> columns = {
      {sched::SchedulerKind::kEdf, 1.0, 2.0},   // EDF d0 = dc/2
      {sched::SchedulerKind::kFifo, 1.0, 1.0},  // FIFO
      {sched::SchedulerKind::kEdf, 1.0, 0.5},   // EDF d0 = 2dc
      {sched::SchedulerKind::kBmux, 1.0, 1.0},  // BMUX
  };

  const SweepRunner runner;
  double total_wall_ms = 0.0;
  std::size_t total_points = 0;
  int threads = 1;

  for (int hops : {2, 5, 10}) {
    std::vector<int> mix_pcts;
    std::vector<e2e::Scenario> scenarios;  // mix-major, column-minor
    for (int mix_pct = 10; mix_pct <= 90; mix_pct += 10) {
      mix_pcts.push_back(mix_pct);
      const double uc = kU * mix_pct / 100.0;
      const double u0 = kU - uc;
      for (const Column& col : columns) {
        scenarios.push_back(ScenarioBuilder()
                                .hops(hops)
                                .through_utilization(u0)
                                .cross_utilization(uc)
                                .violation_probability(1e-9)
                                .scheduler(col.sched)
                                .edf_deadlines(col.own, col.cross)
                                .build());
      }
    }
    const SweepReport report =
        runner.run(std::span<const e2e::Scenario>(scenarios));
    total_wall_ms += report.wall_ms;
    total_points += report.points.size();
    threads = report.threads;

    Table table({"Uc/U", "EDF d0=dc/2", "FIFO", "EDF d0=2dc", "BMUX"});
    for (std::size_t mi = 0; mi < mix_pcts.size(); ++mi) {
      const auto delay = [&](std::size_t ci) {
        return report.points[mi * columns.size() + ci].bound.delay_ms;
      };
      table.add_row(Table::format(mix_pcts[mi] / 100.0, 1),
                    {delay(0), delay(1), delay(2), delay(3)});
    }
    std::printf("--- H = %d ---\n", hops);
    table.print(std::cout);
    std::printf("\ncsv:\n");
    table.print_csv(std::cout);
    std::printf("\n");
  }
  std::fprintf(stderr, "sweep: %zu points in %.0f ms on %d thread(s)\n",
               total_points, total_wall_ms, threads);
  return 0;
}
