// Reproduces Fig. 3 (Example 2): end-to-end delay bounds as a function of
// the traffic mix U_c / U at constant total utilization U = 50%, for
// H = 2, 5, 10.  Schedulers: FIFO, BMUX, and two EDF settings -- shorter
// deadlines for the through traffic (d*_0 = d*_c / 2) and longer ones
// (d*_0 = 2 d*_c).
//
// Expected shape (paper): at H = 2, EDF with favoured through traffic is
// almost insensitive to the mix (larger cross share even helps); as H
// grows all curves steepen and FIFO collapses onto BMUX.
#include <cstdio>
#include <iostream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"

int main() {
  using namespace deltanc;
  std::printf("Fig. 3 / Example 2: delay bounds vs traffic mix Uc/U\n");
  std::printf("(U = 50%% fixed, C = 100 Mbps, eps = 1e-9; delays in ms)\n\n");

  constexpr double kU = 0.50;
  for (int hops : {2, 5, 10}) {
    Table table({"Uc/U", "EDF d0=dc/2", "FIFO", "EDF d0=2dc", "BMUX"});
    for (int mix_pct = 10; mix_pct <= 90; mix_pct += 10) {
      const double uc = kU * mix_pct / 100.0;
      const double u0 = kU - uc;
      const auto bound_for = [&](e2e::Scheduler s, double own, double cross) {
        return PathAnalyzer(ScenarioBuilder()
                                .hops(hops)
                                .through_utilization(u0)
                                .cross_utilization(uc)
                                .violation_probability(1e-9)
                                .scheduler(s)
                                .edf_deadlines(own, cross)
                                .build())
            .bound()
            .delay_ms;
      };
      table.add_row(
          Table::format(mix_pct / 100.0, 1),
          {bound_for(e2e::Scheduler::kEdf, 1.0, 2.0),
           bound_for(e2e::Scheduler::kFifo, 1.0, 1.0),
           bound_for(e2e::Scheduler::kEdf, 1.0, 0.5),
           bound_for(e2e::Scheduler::kBmux, 1.0, 1.0)});
    }
    std::printf("--- H = %d ---\n", hops);
    table.print(std::cout);
    std::printf("\ncsv:\n");
    table.print_csv(std::cout);
    std::printf("\n");
  }
  return 0;
}
