// Simulation validation sweep: for a grid of (H, utilization, scheduler)
// configurations, run the slot-level tandem with the real scheduling
// algorithm and verify the analytic bound dominates the empirical delay
// quantile at the simulation-resolvable epsilon.  Exit code 1 if any
// bound is violated.
#include <cstdio>
#include <iostream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"
#include "e2e/solver.h"
#include "sim/stats.h"

int main() {
  using namespace deltanc;
  std::printf("Bound-vs-simulation validation sweep (C = 100 Mbps, "
              "200k slots per cell)\n\n");

  Table table({"H", "U [%]", "scheduler", "bound [ms]", "sim q [ms]",
               "sim max [ms]", "holds"});
  bool all_hold = true;
  const struct {
    const char* name;
    sched::SchedulerKind sched;
  } cases[] = {{"FIFO", sched::SchedulerKind::kFifo},
               {"BMUX", sched::SchedulerKind::kBmux},
               {"SP-high", sched::SchedulerKind::kSpHigh},
               {"EDF", sched::SchedulerKind::kEdf}};

  for (int hops : {1, 3, 5}) {
    for (double u : {0.45, 0.75}) {
      for (const auto& c : cases) {
        const PathAnalyzer analyzer(ScenarioBuilder()
                                        .hops(hops)
                                        .through_utilization(u / 2.0)
                                        .cross_utilization(u / 2.0)
                                        .scheduler(c.sched)
                                        .build());
        const ValidationReport r = analyzer.validate(200000, 99);
        e2e::Scenario at_eps = analyzer.scenario();
        at_eps.epsilon = r.epsilon_sim;
        const double bound = deltanc::Solver().solve(at_eps).delay_ms;
        // Same resolvability rule as validate() picks its epsilon by
        // (sim/stats.h): a cell whose tail would hold fewer than 100
        // samples shows "-" instead of an untrustworthy quantile.
        const bool resolvable = sim::quantile_resolvable(
            r.epsilon_sim, static_cast<std::size_t>(r.samples), 100.0);
        all_hold = all_hold && (!resolvable || r.bound_holds);
        table.add_row({std::to_string(hops), Table::format(100.0 * u, 0),
                       c.name, Table::format(bound),
                       resolvable ? Table::format(r.empirical_quantile) : "-",
                       Table::format(r.empirical_max),
                       !resolvable ? "-" : (r.bound_holds ? "yes" : "NO")});
      }
    }
  }
  table.print(std::cout);
  std::printf("\n%s\n", all_hold ? "All analytic bounds dominate the "
                                   "simulated quantiles."
                                 : "BOUND VIOLATION DETECTED");
  return all_hold ? 0 : 1;
}
