// The gamma = 0 deterministic corner of Section IV: compare
//
//  (a) the deterministic curve-level end-to-end pipeline (Eq. 19 per-node
//      curves, exact min-plus convolution, worst-case delay), against
//  (b) the stochastic machinery pushed toward its deterministic limit
//      (leaky bucket as EBB with M = e^{B alpha}, alpha -> large,
//      epsilon -> tiny, gamma -> small).
//
// The stochastic bound must converge from above to (a) -- the paper notes
// the gamma = 0 FIFO bounds are weaker than the best known deterministic
// FIFO results, and this bench quantifies the remaining gap per scheduler.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "core/table.h"
#include "e2e/delay_bound.h"
#include "e2e/deterministic_e2e.h"
#include "e2e/heterogeneous.h"
#include "e2e/network_epsilon.h"

int main() {
  using namespace deltanc;
  using namespace deltanc::e2e;

  // Leaky buckets: through (10 Mbps, 20 kb), cross (30 Mbps, 40 kb) per
  // node, C = 100 Mbps.
  constexpr double kC = 100.0, kR0 = 10.0, kB0 = 20.0, kRc = 30.0,
                   kBc = 40.0;
  const double inf = std::numeric_limits<double>::infinity();

  std::printf("Deterministic curve pipeline vs stochastic machinery in the\n"
              "deterministic limit (leaky buckets, C = 100 Mbps)\n\n");
  Table table({"H", "Delta", "det curve [ms]", "stoch limit [ms]", "ratio"});

  for (int hops : {1, 2, 5, 10}) {
    for (double delta : {-5.0, 0.0, 5.0, inf}) {
      const DetPath dp{kC, hops, nc::Curve::leaky_bucket(kR0, kB0),
                       nc::Curve::leaky_bucket(kRc, kBc), delta};
      const double det = det_e2e_best_delay(dp);

      // Deterministic limit of the EBB analysis: a leaky bucket with
      // burst B is EBB with M = e^{B alpha}; large alpha, tiny epsilon,
      // and small gamma approach the never-violated case.  The
      // heterogeneous machinery carries separate prefactors for the
      // through (e^{B0 alpha}) and cross (e^{Bc alpha}) envelopes.
      const double alpha = 2.0;
      HeteroPath hp;
      hp.rho = kR0;
      hp.alpha = alpha;
      hp.m = std::exp(kB0 * alpha);
      for (int h = 0; h < hops; ++h) {
        hp.nodes.push_back({kC, kRc, std::exp(kBc * alpha), delta});
      }
      double stoch = inf;
      for (double gfrac : {0.001, 0.003, 0.01, 0.03, 0.1}) {
        const double gamma = gfrac * hp.gamma_limit();
        const double sigma = hetero_sigma_for_epsilon(hp, gamma, 1e-12);
        stoch = std::min(stoch, hetero_optimize_delay(hp, gamma, sigma).delay);
      }
      table.add_row({std::to_string(hops), Table::format(delta, 0),
                     Table::format(det, 3), Table::format(stoch, 3),
                     Table::format(stoch / det, 2)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nThe stochastic limit stays above the exact deterministic bound\n"
      "(ratio >= 1); the residual gap is the price of the union-bound\n"
      "gamma-degradation, as discussed in the paper's gamma = 0 remark.\n");
  return 0;
}
