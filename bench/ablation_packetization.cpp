// Ablation C: the paper's fluid assumption ("we ignore that packet
// transmissions cannot be interrupted ... reasonable when packet sizes
// are small compared to the transmission rate").  This bench runs the
// tandem simulator with increasingly coarse packet sizes and reports how
// far the empirical through-delay tail drifts from the fluid model.
#include <cstdio>
#include <iostream>

#include "core/table.h"
#include "evsim/network.h"
#include "sim/tandem.h"

int main() {
  using namespace deltanc;
  using namespace deltanc::sim;

  TandemConfig base;
  base.hops = 3;
  base.n_through = 250;
  base.n_cross = 250;
  base.slots = 150000;
  base.seed = 7;

  std::printf("Packetization ablation: through-delay tail vs packet size\n");
  std::printf("(H = 3, U ~ 75%%, C = 100 Mbps = 100 kb/slot)\n\n");

  Table table({"packet [kb]", "p50 [slots]", "p99 [slots]", "p99.9 [slots]",
               "max [slots]"});
  const auto run_with = [&](double packet_kb) {
    TandemConfig c = base;
    c.packet_kb = packet_kb;
    const TandemResult r = run_tandem(c);
    table.add_row(packet_kb == 0.0 ? "fluid" : Table::format(packet_kb, 1),
                  {r.through_delay.quantile(0.50),
                   r.through_delay.quantile(0.99),
                   r.through_delay.quantile(0.999), r.through_delay.max()});
  };
  run_with(0.0);  // fluid reference
  for (double packet : {1.5, 6.0, 12.0, 25.0, 50.0}) run_with(packet);

  table.print(std::cout);
  std::printf(
      "\nEmission granularity alone leaves the slotted (bit-preemptive)\n"
      "tail unchanged.  The real cost of packets appears only with\n"
      "NON-PREEMPTIVE service, measured below with the event-driven\n"
      "simulator under strict priority (the discipline most sensitive to\n"
      "blocking):\n\n");

  Table ev({"packet [kb]", "p50 [ms]", "p99 [ms]", "p99.9 [ms]",
            "max [ms]"});
  for (double packet : {1.5, 6.0, 12.0, 25.0, 50.0}) {
    evsim::EvNetworkConfig c;
    c.hops = 3;
    c.n_through = 250;
    c.n_cross = 250;
    c.slots = 100000;
    c.seed = 7;
    c.packet_kb = packet;
    c.policy = evsim::PolicyKind::kSpThroughHigh;
    const evsim::EvNetworkResult r = run_event_network(c);
    ev.add_row(Table::format(packet, 1),
               {r.through_delay_ms.quantile(0.50),
                r.through_delay_ms.quantile(0.99),
                r.through_delay_ms.quantile(0.999),
                r.through_delay_ms.max()});
  }
  ev.print(std::cout);
  std::printf(
      "\nThe high-priority through traffic now pays a blocking term that\n"
      "grows with the packet size (a cross packet in service cannot be\n"
      "preempted) -- up to ~H * L/C extra delay.  At the paper's P = 1.5 kb\n"
      "on a 100 Mbps link this is 0.045 ms over 3 hops: negligible, which\n"
      "is precisely the paper's small-packet assumption.\n");
  return 0;
}
