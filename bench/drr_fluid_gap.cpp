// Fluid-DRR looseness study: the analytic DRR bound models the quantum
// as a fluid latency term -- per hop, exactly q / C above the GPS(1,1)
// bound of the same rate (the leftover curves differ only in latency, so
// the end-to-end convolution separates: d_drr(q) = d_gps + H q / C).
// This bench (a) verifies that separable identity bit-for-bit against
// the solver, (b) runs the *packetized* deficit-round-robin event
// simulation across quantum sizes, and (c) reports how loose the fluid
// model is: the measured round-robin penalty (sim DRR tail minus sim
// SCFQ tail) stays far below the analytic H q / C charge, because a
// real through packet rarely meets a full adversarial round at every
// hop.  Exit code 1 if the identity breaks or any simulated quantile
// exceeds its analytic bound plus the non-preemptive blocking allowance.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/scenario.h"
#include "core/table.h"
#include "e2e/param_search.h"
#include "e2e/solver.h"
#include "evsim/network.h"

int main() {
  using namespace deltanc;
  constexpr double kEps = 1e-3;       // tail level, resolvable from the run
  constexpr double kPacketKb = 1.5;   // the paper's packet size
  constexpr std::int64_t kSlots = 100000;
  std::printf(
      "Fluid-DRR looseness: analytic quantum charge H*q/C vs the measured\n"
      "packetized round-robin penalty (C = 100, N0 = Nc = 150, eps = 1e-3,\n"
      "%lld slots, packet %.1f kb)\n\n",
      static_cast<long long>(kSlots), kPacketKb);

  Table table({"H", "q [kb]", "bound DRR [ms]", "charge Hq/C [ms]",
               "sim DRR [ms]", "sim penalty [ms]", "holds"});
  bool ok = true;

  for (int hops : {2, 5}) {
    const e2e::Scenario base = ScenarioBuilder()
                                   .hops(hops)
                                   .through_flows(150)
                                   .cross_flows(150)
                                   .violation_probability(kEps)
                                   .build();
    e2e::Scenario gps_sc = base;
    gps_sc.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
    const double gps_bound = deltanc::Solver().solve(gps_sc).delay_ms;

    // Packetized SCFQ baseline: the fair-sharing tail without any
    // round-robin quantum, measured on the same sample path.
    evsim::EvNetworkConfig ev;
    ev.hops = hops;
    ev.n_through = base.n_through;
    ev.n_cross = base.n_cross;
    ev.packet_kb = kPacketKb;
    ev.slots = kSlots;
    ev.seed = 17;
    evsim::lower_scheduler(gps_sc.scheduler, 1.0, ev);
    const double scfq_tail =
        evsim::run_event_network(ev).through_delay_ms.quantile(1.0 - kEps);
    const double allowance = hops * kPacketKb / base.capacity;

    for (double q : {0.5, 1.5, 4.5, 15.0, 45.0}) {
      e2e::Scenario drr_sc = base;
      drr_sc.scheduler = sched::SchedulerSpec::drr(q, q);
      const double drr_bound = deltanc::Solver().solve(drr_sc).delay_ms;
      const double charge = hops * q / base.capacity;

      // (a) The separable identity: the DRR and GPS solves share rate
      // R = C/2, so their bounds differ by exactly the latency charge.
      if (std::abs(drr_bound - (gps_bound + charge)) >
          1e-9 * std::max(1.0, drr_bound)) {
        std::printf("FAIL: d_drr(%g) = %.17g != d_gps + Hq/C = %.17g\n", q,
                    drr_bound, gps_bound + charge);
        ok = false;
      }

      // (b) The packetized simulation under the fluid bound.
      evsim::lower_scheduler(drr_sc.scheduler, 1.0, ev);
      const double drr_tail =
          evsim::run_event_network(ev).through_delay_ms.quantile(1.0 - kEps);
      const bool holds = drr_tail <= drr_bound + allowance;
      ok = ok && holds;

      table.add_row({std::to_string(hops), Table::format(q, 1),
                     Table::format(drr_bound), Table::format(charge, 3),
                     Table::format(drr_tail),
                     Table::format(drr_tail - scfq_tail, 3),
                     holds ? "yes" : "NO"});
    }
    std::printf("H=%d: analytic GPS(1,1) anchor %a ms, sim SCFQ tail %.3f ms\n",
                hops, gps_bound, scfq_tail);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nThe fluid model charges the full worst-case round H*q/C for every\n"
      "quantum increase; the measured penalty grows far slower (queueing\n"
      "absorbs most rounds), so the DRR bound's looseness is almost\n"
      "entirely the quantum charge itself.  %s\n",
      ok ? "All identities and bounds hold."
         : "IDENTITY OR BOUND VIOLATION DETECTED");
  return ok ? 0 : 1;
}
