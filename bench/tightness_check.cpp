// Theorem 2 empirical check: for concave (leaky-bucket) envelopes the
// Eq. (24) schedulability bound is *tight* -- the greedy adversarial
// arrival scenario of the necessity proof realizes it.  This bench sweeps
// random single-node configurations under FIFO / SP / EDF / BMUX and
// reports the bound, the greedy worst-case delay, and their gap (which
// must be ~0 up to numerical tolerance).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <random>

#include "core/table.h"
#include "sched/schedulability.h"
#include "sched/tightness.h"

int main() {
  using namespace deltanc;
  std::printf("Theorem 2 tightness: Eq. (24) bound vs greedy adversarial "
              "delay (single node, C = 100 Mbps)\n\n");

  std::mt19937 rng(2010);
  std::uniform_real_distribution<double> rate(2.0, 20.0);
  std::uniform_real_distribution<double> burst(100.0, 4000.0);
  std::uniform_real_distribution<double> dl(5.0, 200.0);

  Table table({"case", "scheduler", "Eq.24 bound [ms]", "greedy [ms]",
               "rel gap"});
  double worst_gap = 0.0;
  constexpr double kCapacity = 100.0;
  for (int trial = 0; trial < 12; ++trial) {
    const std::vector<nc::Curve> env{
        nc::Curve::leaky_bucket(rate(rng), burst(rng)),
        nc::Curve::leaky_bucket(rate(rng), burst(rng)),
        nc::Curve::leaky_bucket(rate(rng), burst(rng))};
    const struct {
      const char* name;
      sched::DeltaMatrix delta;
    } schedulers[] = {
        {"FIFO", sched::DeltaMatrix::fifo(3)},
        {"SP", sched::DeltaMatrix::static_priority(std::vector<int>{0, 1, 2})},
        {"EDF", sched::DeltaMatrix::edf(
                    std::vector<double>{dl(rng), dl(rng), dl(rng)})},
        {"BMUX", sched::DeltaMatrix::bmux(3, 0)}};
    for (const auto& s : schedulers) {
      const double bound =
          sched::min_delay_bound(kCapacity, s.delta, env, /*flow=*/0);
      const double greedy =
          sched::greedy_worst_case_delay(kCapacity, s.delta, env, /*flow=*/0);
      const double gap = (bound - greedy) / bound;
      worst_gap = std::max(worst_gap, std::abs(gap));
      table.add_row({std::to_string(trial), s.name, Table::format(bound),
                     Table::format(greedy), Table::format(gap, 5)});
    }
  }
  table.print(std::cout);
  std::printf("\nworst relative gap over all cases: %.2e "
              "(Theorem 2 predicts 0 for concave envelopes)\n",
              worst_gap);
  return worst_gap < 5e-3 ? 0 : 1;
}
