// Ablation B: sensitivity of the end-to-end bound to its two free
// parameters -- the per-node rate slack gamma (Eq. 30/32) and the
// Chernoff parameter s of the effective-bandwidth EBB description.  The
// paper optimizes gamma numerically and leaves s implicit; this bench
// shows both matter: the bound is a pronounced valley in (gamma, s), so a
// naive fixed choice can be several times worse than the optimized one.
#include <cstdio>
#include <limits>
#include <iostream>

#include "core/table.h"
#include "e2e/delay_bound.h"
#include "e2e/network_epsilon.h"
#include "e2e/param_search.h"
#include "e2e/solver.h"
#include "traffic/mmoo.h"

int main() {
  using namespace deltanc;
  using namespace deltanc::e2e;

  Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = 236;  // U ~ 50%
  sc.scheduler = sched::SchedulerKind::kFifo;
  const BoundResult best = deltanc::Solver().solve(sc);
  std::printf("Ablation B: sensitivity to (gamma, s); FIFO, H = 5, U ~ 50%%\n");
  std::printf("optimized bound: %.2f ms at gamma = %.4f, s = %.4f\n\n",
              best.delay_ms, best.gamma, best.s);

  // Sweep gamma at the optimal s.
  {
    Table table({"gamma/gamma_max", "bound [ms]", "vs optimum"});
    const double eb = sc.source.effective_bandwidth(best.s);
    const PathParams p{sc.capacity, sc.hops,  sc.n_through * eb,
                       sc.n_cross * eb, best.s, 1.0, 0.0};
    const double glim = p.gamma_limit();
    for (double frac : {0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9, 0.98}) {
      const double gamma = frac * glim;
      const double sigma = sigma_for_epsilon(p, gamma, sc.epsilon);
      const double d = deltanc::Solver().optimize(p, gamma, sigma).delay;
      table.add_row(Table::format(frac, 2), {d, d / best.delay_ms});
    }
    std::printf("--- gamma sweep (s fixed at optimum) ---\n");
    table.print(std::cout);
  }

  // Sweep s with gamma re-optimized for each s.
  {
    Table table({"s", "bound [ms]", "vs optimum"});
    for (double s : {0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32}) {
      const double eb = sc.source.effective_bandwidth(s);
      const PathParams p{sc.capacity, sc.hops,  sc.n_through * eb,
                         sc.n_cross * eb, s, 1.0, 0.0};
      const double glim = p.gamma_limit();
      double bound = std::numeric_limits<double>::infinity();
      if (glim > 0.0) {
        for (int i = 1; i <= 40; ++i) {
          const double gamma = glim * i / 41.0;
          const double sigma = sigma_for_epsilon(p, gamma, sc.epsilon);
          bound = std::min(bound, deltanc::Solver().optimize(p, gamma, sigma).delay);
        }
      }
      table.add_row(Table::format(s, 3), {bound, bound / best.delay_ms});
    }
    std::printf("\n--- s sweep (gamma re-optimized per s) ---\n");
    table.print(std::cout);
  }
  return 0;
}
