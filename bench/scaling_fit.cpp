// Quantitative check of the paper's scaling claims:
//   * network-service-curve bounds grow as Theta(H log H)   (ref. [4]);
//   * additive per-node bounds grow as O(H^3 log H) in discrete time.
// The bench computes bounds over a geometric H-grid and fits log-log
// slopes; d(H) ~ H log H shows an apparent exponent slightly above 1
// that *decreases* toward 1 as H grows, while the additive curve's
// apparent exponent rises well above 2.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"

int main() {
  using namespace deltanc;

  const std::vector<int> hs{2, 4, 8, 16, 32};
  std::vector<double> net, add;
  for (int hops : hs) {
    const PathAnalyzer analyzer(ScenarioBuilder()
                                    .hops(hops)
                                    .through_utilization(0.25)
                                    .cross_utilization(0.25)
                                    .scheduler(sched::SchedulerKind::kBmux)
                                    .build());
    net.push_back(analyzer.bound().delay_ms);
    add.push_back(analyzer.additive_bound().delay_ms);
  }

  Table table({"H range", "net slope", "net slope (H log H model)",
               "additive slope"});
  for (std::size_t i = 0; i + 1 < hs.size(); ++i) {
    const double dh = std::log(static_cast<double>(hs[i + 1]) / hs[i]);
    const double s_net = std::log(net[i + 1] / net[i]) / dh;
    const double s_add = std::log(add[i + 1] / add[i]) / dh;
    // If d = c H log H exactly, the apparent log-log slope over
    // [H1, H2] equals 1 + log(log H2 / log H1) / log(H2 / H1).
    const double hloh =
        1.0 + std::log(std::log(static_cast<double>(hs[i + 1])) /
                       std::log(static_cast<double>(hs[i]))) /
                  dh;
    table.add_row({std::to_string(hs[i]) + "->" + std::to_string(hs[i + 1]),
                   Table::format(s_net, 3), Table::format(hloh, 3),
                   Table::format(s_add, 3)});
  }
  std::printf("Scaling-law fit (BMUX bounds, U = 50%%, eps = 1e-9)\n\n");
  table.print(std::cout);
  std::printf(
      "\nThe network-service-curve slope stays near 1 (between the linear\n"
      "floor and the H log H model), while the additive slope climbs well\n"
      "past 2 -- the H^3-style blow-up of per-node composition.\n");
  return 0;
}
